open Kronos
module Transport = Kronos_transport.Transport
module Chain = Kronos_replication.Chain
module Client = Kronos_service.Client
module Error = Kronos_service.Error

module M = struct
  let scope = Kronos_metrics.scope "federation"
  let cross_commits = Kronos_metrics.counter scope "cross_commits_total"
  let cross_aborts = Kronos_metrics.counter scope "cross_aborts_total"
  let cross_retries = Kronos_metrics.counter scope "cross_retries_total"
  let cross_queries = Kronos_metrics.counter scope "cross_queries_total"
  let internal_edges = Kronos_metrics.counter scope "internal_edges_total"
  let reflections = Kronos_metrics.counter scope "reflection_edges_total"
  let probe_pairs = Kronos_metrics.counter scope "probe_pairs_total"
  let frontier_hits = Kronos_metrics.counter scope "frontier_short_circuits_total"
  let rollbacks = Kronos_metrics.counter scope "portal_rollbacks_total"
  let inconsistencies = Kronos_metrics.counter scope "inconsistencies_total"
end

type endpoint = { shard : int; coordinator : Transport.addr }

type spec = {
  left : Fid.t;
  direction : Order.direction;
  kind : Order.kind;
  right : Fid.t;
}

let constrain ~kind ~direction left right = { left; direction; kind; right }
let must_before a b = constrain ~kind:Order.Must ~direction:Order.Happens_before a b
let must_after a b = constrain ~kind:Order.Must ~direction:Order.Happens_after a b

let prefer_before a b =
  constrain ~kind:Order.Prefer ~direction:Order.Happens_before a b

let prefer_after a b =
  constrain ~kind:Order.Prefer ~direction:Order.Happens_after a b

type fault =
  [ `Probe
  | `Prepare_create
  | `Prepare_apply
  | `Apply_create
  | `Apply_apply
  | `Record
  | `Reflect ]

(* A committed cross-shard edge src -> dst, witnessed by its portal pair:
   [src.id -> out_portal] on the source shard, [in_portal -> dst.id] on the
   destination shard.  [gen_pair] names the (ingress, egress) edge pair whose
   reflection derived this edge, so a rollback can unmark it. *)
type edge = {
  e_id : int;
  src : Fid.t;
  dst : Fid.t;
  out_portal : Event_id.t;
  in_portal : Event_id.t;
  frontier_snap : int array;
  internal : bool;
  gen_pair : (int * int) option;
}

type commit_ok = { edge : edge; recorded : edge list }

type commit_result =
  | Committed of commit_ok
  | Implied
  | Refused
  | Contended
  | Failed of Error.t

type stats_gather = {
  g_targets : (int * Transport.addr) list;
  g_timeout : float;
  g_k : (int * (string * float) list) list -> unit;
}

type stats_active = {
  a_map : (Transport.addr, int) Hashtbl.t;
  mutable a_acc : (int * (string * float) list) list;
  mutable a_left : int;
  a_k : (int * (string * float) list) list -> unit;
  mutable a_timer : Transport.timer option;
}

type t = {
  net : Chain.msg Transport.t;
  stats_addr : Transport.addr;
  f_ring : Ring.t;
  ids : int array; (* ascending shard ids *)
  slots : (int, int) Hashtbl.t; (* shard id -> dense index *)
  clients : (int, Client.t) Hashtbl.t;
  mutable rr : int;
  mutable next_edge : int;
  edges : (int, edge) Hashtbl.t;
  direct_tbl : (int * int, int list ref) Hashtbl.t; (* (src, dst) shard pair *)
  ingress : (int, int list ref) Hashtbl.t; (* dst shard -> edge ids *)
  egress : (int, int list ref) Hashtbl.t; (* src shard -> edge ids *)
  reflected : (int * int, unit) Hashtbl.t; (* composed (ingress, egress) pairs *)
  frontier_counts : int array; (* per slot: committed egress edges *)
  jobs : ((unit -> unit) -> unit) Queue.t;
  mutable lane_busy : bool;
  mutable fault : (fault -> bool) option;
  mutable bad : int; (* acked-edge reflection rejections *)
  mutable internal_count : int;
  stats_queue : stats_gather Queue.t;
  mutable stats_active : stats_active option;
}

(* ---------- small helpers ---------- *)

let list_tbl tbl key =
  match Hashtbl.find_opt tbl key with Some r -> !r | None -> []

let add_tbl tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let remove_tbl tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := List.filter (fun x -> x <> v) !r
  | None -> ()

let client t shard = Hashtbl.find_opt t.clients shard
let client_exn t shard = Hashtbl.find t.clients shard
let slot t shard = Hashtbl.find t.slots shard

let direct_edges t i j =
  List.filter_map (Hashtbl.find_opt t.edges) (list_tbl t.direct_tbl (i, j))

let faulted t step = match t.fault with Some f -> f step | None -> false

(* The serial lane: cross-shard commits and intra-shard assigns that can
   connect portals run one at a time, so the reflection closure is always
   complete before the next ordering decision relies on it. *)
let rec pump t =
  if not t.lane_busy then
    match Queue.take_opt t.jobs with
    | None -> ()
    | Some job ->
      t.lane_busy <- true;
      job (fun () ->
          t.lane_busy <- false;
          pump t)

let enqueue t job =
  Queue.add job t.jobs;
  pump t

(* ---------- probes ---------- *)

let probe t ?timeout shard pairs k =
  if pairs = [] then k (Ok [||])
  else begin
    Kronos_metrics.Counter.add M.probe_pairs (List.length pairs);
    Client.query_order (client_exn t shard) ?timeout pairs (function
      | Ok rels -> k (Ok (Array.of_list rels))
      | Error e -> k (Error e))
  end

let probe2 t ?timeout (s1, p1) (s2, p2) k =
  let r1 = ref None and r2 = ref None in
  let try_finish () =
    match (!r1, !r2) with
    | Some a, Some b -> (
        match (a, b) with
        | Ok x, Ok y -> k (Ok (x, y))
        | (Error _ as e), _ | _, (Error _ as e) ->
          k (match e with Error e -> Error e | Ok _ -> assert false))
    | _ -> ()
  in
  probe t ?timeout s1 p1 (fun r ->
      r1 := Some r;
      try_finish ());
  probe t ?timeout s2 p2 (fun r ->
      r2 := Some r;
      try_finish ())

(* ---------- edge registry ---------- *)

let release_portal t ?timeout shard portal =
  match client t shard with
  | None -> ()
  | Some c -> Client.release_ref c ?timeout portal (fun _ -> ())

let record_edge t ~src ~dst ~out_portal ~in_portal ~internal ~gen_pair =
  let e_id = t.next_edge in
  t.next_edge <- e_id + 1;
  let i = src.Fid.shard and j = dst.Fid.shard in
  let si = slot t i in
  t.frontier_counts.(si) <- t.frontier_counts.(si) + 1;
  let e =
    {
      e_id;
      src;
      dst;
      out_portal;
      in_portal;
      frontier_snap = Array.copy t.frontier_counts;
      internal;
      gen_pair;
    }
  in
  Hashtbl.replace t.edges e_id e;
  add_tbl t.direct_tbl (i, j) e_id;
  add_tbl t.egress i e_id;
  add_tbl t.ingress j e_id;
  if internal then begin
    t.internal_count <- t.internal_count + 1;
    Kronos_metrics.Counter.incr M.internal_edges
  end;
  Kronos_metrics.Counter.incr M.cross_commits;
  e

(* Undo a recorded edge: released portals are unobservable, so the edge's
   constraint disappears with them; unmark the reflection pair that derived
   it so a later scan may retry the composition. *)
let rollback_edge t ?timeout e =
  Hashtbl.remove t.edges e.e_id;
  let i = e.src.Fid.shard and j = e.dst.Fid.shard in
  remove_tbl t.direct_tbl (i, j) e.e_id;
  remove_tbl t.egress i e.e_id;
  remove_tbl t.ingress j e.e_id;
  let si = slot t i in
  t.frontier_counts.(si) <- t.frontier_counts.(si) - 1;
  if e.internal then t.internal_count <- t.internal_count - 1;
  (match e.gen_pair with
  | Some p -> Hashtbl.remove t.reflected p
  | None -> ());
  let stale =
    Hashtbl.fold
      (fun (a, b) () acc ->
        if a = e.e_id || b = e.e_id then (a, b) :: acc else acc)
      t.reflected []
  in
  List.iter (Hashtbl.remove t.reflected) stale;
  Kronos_metrics.Counter.incr M.rollbacks;
  release_portal t ?timeout i e.out_portal;
  release_portal t ?timeout j e.in_portal

let rollback_list t ?timeout edges = List.iter (rollback_edge t ?timeout) edges

let unreflected_pairs t sh =
  let find = Hashtbl.find_opt t.edges in
  let ins = List.filter_map find (list_tbl t.ingress sh) in
  let outs = List.filter_map find (list_tbl t.egress sh) in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          if x.e_id = y.e_id || Hashtbl.mem t.reflected (x.e_id, y.e_id) then
            None
          else Some (x, y))
        outs)
    ins

(* ---------- the two-shard commit and the reflection closure ---------- *)

(* One side of the commit: mint a portal, then apply the half-edge under the
   guards probed for that shard.  Any failure releases the portal, which is
   all the rollback a half-edge ever needs. *)
let side t ?timeout ~shard ~guards ~batch_of ~fault_create ~fault_apply k =
  if faulted t fault_create then k (Error `Fault)
  else
    Client.create_event (client_exn t shard) ?timeout (function
      | Error e -> k (Error (`Err e))
      | Ok p ->
        if faulted t fault_apply then begin
          release_portal t ?timeout shard p;
          k (Error `Fault)
        end
        else
          Client.guarded_assign (client_exn t shard) ?timeout ~guards
            (batch_of p) (function
            | Ok _ -> k (Ok p)
            | Error (Error.Rejected (Order.Guard_failed _)) ->
              release_portal t ?timeout shard p;
              k (Error `Guard)
            | Error e ->
              release_portal t ?timeout shard p;
              k (Error (`Err e))))

let rec commit_cross t ?timeout ~internal ~gen_pair ~attempt a b k =
  let abort result =
    Kronos_metrics.Counter.incr M.cross_aborts;
    k result
  in
  let retry () =
    Kronos_metrics.Counter.incr M.cross_retries;
    if attempt >= 2 then abort Contended
    else commit_cross t ?timeout ~internal ~gen_pair ~attempt:(attempt + 1) a b k
  in
  if faulted t `Probe then abort (Failed Error.Timeout)
  else begin
    let i = a.Fid.shard and j = b.Fid.shard in
    let fwd = direct_edges t i j and bwd = direct_edges t j i in
    let nb = List.length bwd in
    let pa =
      List.map (fun s -> (s.in_portal, a.Fid.id)) bwd
      @ List.map (fun r -> (a.Fid.id, r.out_portal)) fwd
    and pb =
      List.map (fun s -> (b.Fid.id, s.out_portal)) bwd
      @ List.map (fun r -> (r.in_portal, b.Fid.id)) fwd
    in
    probe2 t ?timeout (i, pa) (j, pb) (function
      | Error e -> k (Failed e)
      | Ok (ra, rb) ->
        let both idx = ra.(idx) = Order.Before && rb.(idx) = Order.Before in
        let exists lo hi =
          let rec go idx = idx < hi && (both idx || go (idx + 1)) in
          go lo
        in
        let conflict = exists 0 nb in
        let implied = exists nb (Array.length ra) in
        if conflict then begin
          if implied then begin
            t.bad <- t.bad + 1;
            Kronos_metrics.Counter.incr M.inconsistencies
          end;
          abort Refused
        end
        else if implied then k Implied
        else begin
          let triple pairs rels =
            List.mapi (fun idx (e1, e2) -> (e1, e2, rels.(idx))) pairs
          in
          let guards_i = triple pa ra and guards_j = triple pb rb in
          let s1 = min i j and s2 = max i j in
          let guards_of s = if s = i then guards_i else guards_j in
          let batch_of s p =
            if s = i then [ Order.must_before a.Fid.id p ]
            else [ Order.must_before p b.Fid.id ]
          in
          side t ?timeout ~shard:s1 ~guards:(guards_of s1) ~batch_of:(batch_of s1)
            ~fault_create:`Prepare_create ~fault_apply:`Prepare_apply (function
            | Error `Guard -> retry ()
            | Error `Fault -> abort (Failed Error.Timeout)
            | Error (`Err e) -> abort (Failed e)
            | Ok p1 ->
              side t ?timeout ~shard:s2 ~guards:(guards_of s2)
                ~batch_of:(batch_of s2) ~fault_create:`Apply_create
                ~fault_apply:`Apply_apply (function
                | Error `Guard ->
                  release_portal t ?timeout s1 p1;
                  retry ()
                | Error `Fault ->
                  release_portal t ?timeout s1 p1;
                  abort (Failed Error.Timeout)
                | Error (`Err e) ->
                  release_portal t ?timeout s1 p1;
                  abort (Failed e)
                | Ok p2 ->
                  if faulted t `Record then begin
                    release_portal t ?timeout s1 p1;
                    release_portal t ?timeout s2 p2;
                    abort (Failed Error.Timeout)
                  end
                  else begin
                    let out_portal, in_portal =
                      if s1 = i then (p1, p2) else (p2, p1)
                    in
                    let e =
                      record_edge t ~src:a ~dst:b ~out_portal ~in_portal
                        ~internal ~gen_pair
                    in
                    let acc = ref [ e ] in
                    if faulted t `Reflect then begin
                      rollback_list t ?timeout !acc;
                      abort (Failed Error.Timeout)
                    end
                    else
                      reflect_edge t ?timeout ~acc e (function
                        | Ok () -> k (Committed { edge = e; recorded = !acc })
                        | Error `Cycle ->
                          rollback_list t ?timeout !acc;
                          abort Refused
                        | Error `Contended ->
                          rollback_list t ?timeout !acc;
                          retry ()
                        | Error (`Err err) ->
                          rollback_list t ?timeout !acc;
                          abort (Failed err))
                  end))
        end)
  end

(* Materialize the composition of ingress edge [x] with egress edge [y]
   (their portals are locally connected on the shared shard): a derived
   constraint from [x]'s source to [y]'s destination.  [acc], when given,
   collects every edge recorded so the caller can roll the whole set back. *)
and compose_pair t ?timeout ~acc (x, y) k =
  let mark () = Hashtbl.replace t.reflected (x.e_id, y.e_id) () in
  let m = x.src.Fid.shard and n = y.dst.Fid.shard in
  if m = n then
    Client.assign_order (client_exn t m) ?timeout
      [ Order.must_before x.out_portal y.in_portal ]
      (function
      | Ok _ ->
        mark ();
        Kronos_metrics.Counter.incr M.reflections;
        k (Ok ())
      | Error (Error.Rejected (Order.Must_violated _)) -> k (Error `Cycle)
      | Error e -> k (Error (`Err e)))
  else
    let ox = Fid.make ~shard:m x.out_portal
    and iy = Fid.make ~shard:n y.in_portal in
    commit_cross t ?timeout ~internal:true
      ~gen_pair:(Some (x.e_id, y.e_id))
      ~attempt:0 ox iy (function
      | Committed { recorded; _ } ->
        (match acc with Some r -> r := recorded @ !r | None -> ());
        mark ();
        Kronos_metrics.Counter.incr M.reflections;
        k (Ok ())
      | Implied ->
        mark ();
        k (Ok ())
      | Refused -> k (Error `Cycle)
      | Contended -> k (Error `Contended)
      | Failed e -> k (Error (`Err e)))

and compose_seq t ?timeout ~acc pairs k =
  match pairs with
  | [] -> k (Ok ())
  | p :: rest ->
    compose_pair t ?timeout ~acc p (function
      | Ok () -> compose_seq t ?timeout ~acc rest k
      | Error _ as e -> k e)

(* After committing edge [e], probe every still-unreflected portal pair
   that involves [e] on its two shards and materialize the connected ones.
   Derived edges recurse through [commit_cross], which reflects them in
   turn, so one scan per edge reaches the closure. *)
and reflect_edge t ?timeout ~acc e k =
  let find = Hashtbl.find_opt t.edges in
  let outs =
    List.filter_map find (list_tbl t.egress e.dst.Fid.shard)
    |> List.filter (fun y ->
           y.e_id <> e.e_id && not (Hashtbl.mem t.reflected (e.e_id, y.e_id)))
  and ins =
    List.filter_map find (list_tbl t.ingress e.src.Fid.shard)
    |> List.filter (fun x ->
           x.e_id <> e.e_id && not (Hashtbl.mem t.reflected (x.e_id, e.e_id)))
  in
  if outs = [] && ins = [] then k (Ok ())
  else
    let p_dst = List.map (fun y -> (e.in_portal, y.out_portal)) outs
    and p_src = List.map (fun x -> (x.in_portal, e.out_portal)) ins in
    probe2 t ?timeout (e.dst.Fid.shard, p_dst) (e.src.Fid.shard, p_src)
      (function
      | Error err -> k (Error (`Err err))
      | Ok (rd, rs) ->
        let connected =
          List.filteri (fun idx _ -> rd.(idx) = Order.Before) outs
          |> List.map (fun y -> (e, y))
        in
        let connected =
          connected
          @ (List.filteri (fun idx _ -> rs.(idx) = Order.Before) ins
            |> List.map (fun x -> (x, e)))
        in
        compose_seq t ?timeout ~acc:(Some acc) connected k)

(* Repair pass: compositions witnessed by the committed graph but not yet
   in the registry (an intra-shard assign raced a concurrent commit on the
   open path).  Run before any decision that relies on the direct tables;
   repaired edges are justified by acked state and stay regardless of what
   the enclosing operation does. *)
let rec repair_scan t ?timeout sh k =
  let pairs = unreflected_pairs t sh in
  if pairs = [] then k (Ok ())
  else
    probe t ?timeout sh
      (List.map (fun (x, y) -> (x.in_portal, y.out_portal)) pairs)
      (function
      | Error e -> k (Error (`Err e))
      | Ok rels ->
        let connected =
          List.filteri (fun idx _ -> rels.(idx) = Order.Before) pairs
        in
        let rec go = function
          | [] -> k (Ok ())
          | p :: rest ->
            compose_pair t ?timeout ~acc:None p (function
              | Ok () -> go rest
              | Error `Cycle ->
                (* a cycle among acked edges: count it, mark the pair so
                   the scan terminates, and keep going *)
                let x, y = p in
                t.bad <- t.bad + 1;
                Kronos_metrics.Counter.incr M.inconsistencies;
                Hashtbl.replace t.reflected (x.e_id, y.e_id) ();
                go rest
              | Error `Contended -> k (Error `Contended)
              | Error (`Err e) -> k (Error (`Err e)))
        in
        go connected)

and repair_shards t ?timeout shards k =
  match shards with
  | [] -> k (Ok ())
  | sh :: rest ->
    repair_scan t ?timeout sh (function
      | Ok () -> repair_shards t ?timeout rest k
      | Error _ as e -> k e)

(* ---------- lane-side spec processing ---------- *)

let remap_err idx = function
  | Error.Rejected (Order.Must_violated _) ->
    Error.Rejected (Order.Must_violated idx)
  | Error.Rejected (Order.Must_self _) -> Error.Rejected (Order.Must_self idx)
  | Error.Rejected (Order.Guard_failed _) ->
    Error.Rejected (Order.Guard_failed idx)
  | e -> e

let to_local (s : spec) : Order.spec =
  Order.constrain ~kind:s.kind ~direction:s.direction s.left.Fid.id
    s.right.Fid.id

let normalize (s : spec) =
  match s.direction with
  | Order.Happens_before -> (s.left, s.right)
  | Order.Happens_after -> (s.right, s.left)

let single_outcome = function
  | [ o ] -> o
  | _ -> assert false (* single-spec batch *)

(* An intra-shard constraint on a shard holding both ingress and egress
   portals, processed inside the lane: predict which portal pairs the new
   edge would connect, materialize those compositions first (so a
   cycle-closing constraint is refused and so the closure never lags), then
   apply the constraint under guards pinning the probed relations. *)
let lane_intra t ?timeout spec idx k =
  let u, v = normalize spec in
  let sh = u.Fid.shard in
  let c = client_exn t sh in
  let direct () =
    Client.assign_order c ?timeout [ to_local spec ] (function
      | Ok outs -> k (Ok (single_outcome outs))
      | Error e -> k (Error (remap_err idx e)))
  in
  let rec attempt_apply n =
    let pairs = unreflected_pairs t sh in
    if pairs = [] then direct ()
    else begin
      let module S = Set.Make (Int) in
      let ins =
        S.elements (S.of_list (List.map (fun (x, _) -> x.e_id) pairs))
        |> List.map (Hashtbl.find t.edges)
      and outs =
        S.elements (S.of_list (List.map (fun (_, y) -> y.e_id) pairs))
        |> List.map (Hashtbl.find t.edges)
      in
      let np = List.length pairs and ni = List.length ins in
      let probe_pairs =
        List.map (fun (x, y) -> (x.in_portal, y.out_portal)) pairs
        @ List.map (fun x -> (x.in_portal, u.Fid.id)) ins
        @ List.map (fun y -> (v.Fid.id, y.out_portal)) outs
      in
      let pos_in x =
        let rec go i = function
          | [] -> assert false
          | e :: _ when e.e_id = x.e_id -> i
          | _ :: rest -> go (i + 1) rest
        in
        np + go 0 ins
      and pos_out y =
        let rec go i = function
          | [] -> assert false
          | e :: _ when e.e_id = y.e_id -> i
          | _ :: rest -> go (i + 1) rest
        in
        np + ni + go 0 outs
      in
      probe t ?timeout sh probe_pairs (function
        | Error e -> k (Error e)
        | Ok rels ->
          let repairs =
            List.filteri (fun i _ -> rels.(i) = Order.Before) pairs
          and speculative =
            List.filteri
              (fun i (x, y) ->
                rels.(i) <> Order.Before
                && rels.(pos_in x) = Order.Before
                && rels.(pos_out y) = Order.Before)
              pairs
          in
          let guards =
            List.mapi (fun i (e1, e2) -> (e1, e2, rels.(i))) probe_pairs
          in
          let spec_acc = ref [] in
          let fail e =
            rollback_list t ?timeout !spec_acc;
            k (Error e)
          in
          let refuse () =
            rollback_list t ?timeout !spec_acc;
            match spec.kind with
            | Order.Must -> k (Error (Error.Rejected (Order.Must_violated idx)))
            | Order.Prefer -> k (Ok Order.Reversed)
          in
          (* Speculative compositions whose derived edge is cross-shard are
             applied before the spec through [commit_cross] (portal release
             rolls them back if the spec is not applied).  Ones whose
             derived edge is local to a single other shard connect two
             committed edges' portals with a plain local assign — that
             cannot be rolled back, so they are only cycle-probed before
             the spec and materialized after it succeeds. *)
          let spec_cross, spec_local =
            List.partition
              (fun (x, y) -> x.src.Fid.shard <> y.dst.Fid.shard)
              speculative
          in
          (* After the spec is in, the lane still serializes every mutation
             that could touch these portals, so a refusal here means the
             acked state already held a cycle. *)
          let rec post_compose o = function
            | [] -> k (Ok o)
            | p :: rest ->
              compose_pair t ?timeout ~acc:None p (function
                | Ok () -> post_compose o rest
                | Error `Cycle ->
                  let x, y = p in
                  t.bad <- t.bad + 1;
                  Kronos_metrics.Counter.incr M.inconsistencies;
                  Hashtbl.replace t.reflected (x.e_id, y.e_id) ();
                  post_compose o rest
                | Error `Contended | Error (`Err _) ->
                  (* recoverable: the pair stays unreflected and a later
                     repair scan composes it *)
                  post_compose o rest)
          in
          let apply posts =
            Client.guarded_assign c ?timeout ~guards [ to_local spec ]
              (function
              | Ok outs ->
                let o = single_outcome outs in
                (* a reversed prefer means the constraint was not applied:
                   its speculative compositions are unjustified *)
                if o = Order.Reversed then begin
                  rollback_list t ?timeout !spec_acc;
                  k (Ok o)
                end
                else post_compose o posts
              | Error (Error.Rejected (Order.Guard_failed _)) ->
                rollback_list t ?timeout !spec_acc;
                if n >= 2 then
                  k (Error (Error.Rejected (Order.Guard_failed idx)))
                else attempt_apply (n + 1)
              | Error e -> fail (remap_err idx e))
          in
          (* Cycle-probe the local compositions on their target shards: a
             reverse path there means the spec would close a multi-shard
             cycle, so it is refused before anything is applied.  Pairs
             already connected are just marked reflected. *)
          let probe_locals k2 =
            let groups = Hashtbl.create 4 in
            List.iter
              (fun (x, y) -> add_tbl groups x.src.Fid.shard (x, y))
              spec_local;
            let shs =
              List.sort Int.compare
                (Hashtbl.fold (fun sh _ acc -> sh :: acc) groups [])
            in
            let rec go acc = function
              | [] -> k2 (`Go acc)
              | sh :: rest ->
                let items = List.rev !(Hashtbl.find groups sh) in
                probe t ?timeout sh
                  (List.map (fun (x, y) -> (x.out_portal, y.in_portal)) items)
                  (function
                  | Error e -> k2 (`Err e)
                  | Ok prels ->
                    if Array.exists (fun r -> r = Order.After) prels then
                      k2 `Cycle
                    else begin
                      let keep = ref acc in
                      List.iteri
                        (fun i (x, y) ->
                          if prels.(i) = Order.Before then
                            Hashtbl.replace t.reflected (x.e_id, y.e_id) ()
                          else keep := (x, y) :: !keep)
                        items;
                      go !keep rest
                    end)
            in
            go [] shs
          in
          (* repairs first (permanent), then the compositions this spec
             would enable *)
          let rec do_repairs = function
            | [] ->
              probe_locals (function
                | `Err e -> k (Error e)
                | `Cycle -> refuse ()
                | `Go posts -> do_spec posts spec_cross)
            | p :: rest ->
              compose_pair t ?timeout ~acc:None p (function
                | Ok () -> do_repairs rest
                | Error `Cycle ->
                  let x, y = p in
                  t.bad <- t.bad + 1;
                  Kronos_metrics.Counter.incr M.inconsistencies;
                  Hashtbl.replace t.reflected (x.e_id, y.e_id) ();
                  do_repairs rest
                | Error `Contended ->
                  k (Error (Error.Rejected (Order.Guard_failed idx)))
                | Error (`Err e) -> k (Error e))
          and do_spec posts = function
            | [] -> apply posts
            | p :: rest ->
              compose_pair t ?timeout ~acc:(Some spec_acc) p (function
                | Ok () -> do_spec posts rest
                | Error `Cycle -> refuse ()
                | Error `Contended ->
                  rollback_list t ?timeout !spec_acc;
                  k (Error (Error.Rejected (Order.Guard_failed idx)))
                | Error (`Err e) -> fail e)
          in
          do_repairs repairs)
    end
  in
  if Event_id.equal u.Fid.id v.Fid.id then direct () else attempt_apply 0

let lane_cross t ?timeout spec idx k =
  let u, v = normalize spec in
  repair_shards t ?timeout [ u.Fid.shard; v.Fid.shard ] (function
    | Error `Contended -> k (Error (Error.Rejected (Order.Guard_failed idx)))
    | Error (`Err e) -> k (Error e)
    | Ok () ->
      commit_cross t ?timeout ~internal:false ~gen_pair:None ~attempt:0 u v
        (function
        | Committed _ -> k (Ok Order.Applied)
        | Implied -> k (Ok Order.Already)
        | Refused -> (
            match spec.kind with
            | Order.Must -> k (Error (Error.Rejected (Order.Must_violated idx)))
            | Order.Prefer -> k (Ok Order.Reversed))
        | Contended -> k (Error (Error.Rejected (Order.Guard_failed idx)))
        | Failed e -> k (Error e)))

(* ---------- construction ---------- *)

let stats_finish t =
  match t.stats_active with
  | None -> ()
  | Some a ->
    (match a.a_timer with Some tm -> Transport.cancel tm | None -> ());
    t.stats_active <- None;
    let acc =
      List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) a.a_acc
    in
    a.a_k acc

let rec stats_start t =
  match t.stats_active with
  | Some _ -> ()
  | None -> (
      match Queue.take_opt t.stats_queue with
      | None -> ()
      | Some g ->
        let map = Hashtbl.create 8 in
        List.iter (fun (shard, addr) -> Hashtbl.replace map addr shard)
          g.g_targets;
        let a =
          { a_map = map; a_acc = []; a_left = Hashtbl.length map; a_k = g.g_k;
            a_timer = None }
        in
        t.stats_active <- Some a;
        a.a_timer <-
          Some
            (Transport.schedule t.net ~delay:g.g_timeout (fun () ->
                 stats_finish t;
                 stats_start t));
        List.iter
          (fun (_, addr) ->
            Transport.send t.net ~src:t.stats_addr ~dst:addr
              (Chain.Get_stats { client = t.stats_addr }))
          g.g_targets)

let on_stats t ~src msg =
  match msg with
  | Chain.Stats_is { samples } -> (
      match t.stats_active with
      | Some a when Hashtbl.mem a.a_map src ->
        let shard = Hashtbl.find a.a_map src in
        Hashtbl.remove a.a_map src;
        a.a_acc <- (shard, samples) :: a.a_acc;
        a.a_left <- a.a_left - 1;
        if a.a_left = 0 then begin
          stats_finish t;
          stats_start t
        end
      | _ -> ())
  | _ -> ()

let create ~net ~addr ~shards ?vnodes ?cache_capacity ?request_timeout () =
  if shards = [] then invalid_arg "Router.create: no shards";
  let sorted =
    List.sort (fun a b -> Int.compare a.shard b.shard) shards
  in
  let ids = Array.of_list (List.map (fun e -> e.shard) sorted) in
  let f_ring = Ring.create ?vnodes (Array.to_list ids) in
  let slots = Hashtbl.create 8 in
  Array.iteri (fun i s -> Hashtbl.replace slots s i) ids;
  let clients = Hashtbl.create 8 in
  List.iteri
    (fun i e ->
      Hashtbl.replace clients e.shard
        (Client.create ~net ~addr:(addr + i) ~coordinator:e.coordinator
           ?cache_capacity ?request_timeout ()))
    sorted;
  let t =
    {
      net;
      stats_addr = addr + Array.length ids;
      f_ring;
      ids;
      slots;
      clients;
      (* Start the keyless round-robin at an addr-dependent offset:
         one-shot processes (each kronos_cli run is a fresh pid-derived
         addr) would otherwise all place their first event on shard 0. *)
      rr = abs addr mod Array.length ids;
      next_edge = 0;
      edges = Hashtbl.create 64;
      direct_tbl = Hashtbl.create 16;
      ingress = Hashtbl.create 8;
      egress = Hashtbl.create 8;
      reflected = Hashtbl.create 64;
      frontier_counts = Array.make (Array.length ids) 0;
      jobs = Queue.create ();
      lane_busy = false;
      fault = None;
      bad = 0;
      internal_count = 0;
      stats_queue = Queue.create ();
      stats_active = None;
    }
  in
  Transport.register net t.stats_addr (fun ~src msg -> on_stats t ~src msg);
  t

(* ---------- public operations ---------- *)

let known t fid = Hashtbl.mem t.clients fid.Fid.shard

let validate t fids =
  List.find_opt (fun fid -> not (known t fid)) fids

let unknown_error fid = Error.Rejected (Order.Unknown_event fid.Fid.id)

let create_event t ?timeout ?key k =
  let sh =
    match key with
    | Some key -> Ring.lookup_string t.f_ring key
    | None ->
      let s = t.ids.(t.rr mod Array.length t.ids) in
      t.rr <- t.rr + 1;
      s
  in
  Client.create_event (client_exn t sh) ?timeout (function
    | Ok id -> k (Ok (Fid.make ~shard:sh id))
    | Error e -> k (Error e))

let acquire_ref t ?timeout fid k =
  if not (known t fid) then k (Error (unknown_error fid))
  else Client.acquire_ref (client_exn t fid.Fid.shard) ?timeout fid.Fid.id k

let release_ref t ?timeout fid k =
  if not (known t fid) then k (Error (unknown_error fid))
  else Client.release_ref (client_exn t fid.Fid.shard) ?timeout fid.Fid.id k

(* Cross-shard read: no witnesses between the two shards means no cross
   ordering (frontier short-circuit); otherwise one probe per side over the
   direct witness portals decides the relation. *)
let cross_query t ?timeout x y k =
  Kronos_metrics.Counter.incr M.cross_queries;
  let i = x.Fid.shard and j = y.Fid.shard in
  let fwd = direct_edges t i j and bwd = direct_edges t j i in
  if fwd = [] && bwd = [] then begin
    Kronos_metrics.Counter.incr M.frontier_hits;
    k (Ok Order.Concurrent)
  end
  else
    let nf = List.length fwd in
    let pa =
      List.map (fun r -> (x.Fid.id, r.out_portal)) fwd
      @ List.map (fun s -> (s.in_portal, x.Fid.id)) bwd
    and pb =
      List.map (fun r -> (r.in_portal, y.Fid.id)) fwd
      @ List.map (fun s -> (y.Fid.id, s.out_portal)) bwd
    in
    probe2 t ?timeout (i, pa) (j, pb) (function
      | Error e -> k (Error e)
      | Ok (ra, rb) ->
        let both idx = ra.(idx) = Order.Before && rb.(idx) = Order.Before in
        let exists lo hi =
          let rec go idx = idx < hi && (both idx || go (idx + 1)) in
          go lo
        in
        let before = exists 0 nf and after = exists nf (Array.length ra) in
        if before && after then begin
          t.bad <- t.bad + 1;
          Kronos_metrics.Counter.incr M.inconsistencies;
          k (Ok Order.Before)
        end
        else if before then k (Ok Order.Before)
        else if after then k (Ok Order.After)
        else k (Ok Order.Concurrent))

let query_order t ?timeout pairs callback =
  match
    validate t (List.concat_map (fun (x, y) -> [ x; y ]) pairs)
  with
  | Some fid -> callback (Error (unknown_error fid))
  | None ->
    if pairs = [] then callback (Ok [])
    else begin
      let n = List.length pairs in
      let results = Array.make n Order.Concurrent in
      let err = ref None in
      let record_err idx e =
        match !err with
        | Some (prev, _) when prev <= idx -> ()
        | _ -> err := Some (idx, e)
      in
      (* per-shard groups of same-shard pairs, plus individual cross pairs *)
      let groups = Hashtbl.create 8 in
      let cross = ref [] in
      List.iteri
        (fun idx (x, y) ->
          if x.Fid.shard = y.Fid.shard then
            add_tbl groups x.Fid.shard (idx, (x.Fid.id, y.Fid.id))
          else cross := (idx, x, y) :: !cross)
        pairs;
      let jobs = Hashtbl.length groups + List.length !cross in
      let left = ref jobs in
      let finish_one () =
        decr left;
        if !left = 0 then
          match !err with
          | Some (_, e) -> callback (Error e)
          | None -> callback (Ok (Array.to_list results))
      in
      Hashtbl.iter
        (fun sh group ->
          let items = List.rev !group in
          Client.query_order (client_exn t sh) ?timeout
            (List.map snd items)
            (function
            | Ok rels ->
              List.iter2 (fun (idx, _) r -> results.(idx) <- r) items rels;
              finish_one ()
            | Error e ->
              record_err (fst (List.hd items)) e;
              finish_one ()))
        groups;
      List.iter
        (fun (idx, x, y) ->
          cross_query t ?timeout x y (function
            | Ok r ->
              results.(idx) <- r;
              finish_one ()
            | Error e ->
              record_err idx e;
              finish_one ()))
        !cross
    end

let biportal t sh = list_tbl t.ingress sh <> [] && list_tbl t.egress sh <> []

let assign_order t ?timeout specs callback =
  match
    validate t (List.concat_map (fun s -> [ s.left; s.right ]) specs)
  with
  | Some fid -> callback (Error (unknown_error fid))
  | None ->
    if specs = [] then callback (Ok [])
    else begin
      let cross =
        List.exists (fun s -> s.left.Fid.shard <> s.right.Fid.shard) specs
      in
      let shards_used =
        List.sort_uniq Int.compare
          (List.concat_map
             (fun s -> [ s.left.Fid.shard; s.right.Fid.shard ])
             specs)
      in
      let any_biportal = List.exists (biportal t) shards_used in
      match (cross || any_biportal, shards_used) with
      | false, [ sh ] ->
        (* the scaling fast path: a whole-batch atomic assign on the
           owning chain, untouched by the lane *)
        Client.assign_order (client_exn t sh) ?timeout
          (List.map to_local specs) callback
      | false, _ ->
        (* multi-shard, portal-quiet: scatter per-shard sub-batches in
           parallel; each is atomic on its shard *)
        let groups = Hashtbl.create 8 in
        List.iteri
          (fun idx s -> add_tbl groups s.left.Fid.shard (idx, to_local s))
          specs;
        let outcomes = Array.make (List.length specs) Order.Applied in
        let err = ref None in
        let left = ref (Hashtbl.length groups) in
        let finish_one () =
          decr left;
          if !left = 0 then
            match !err with
            | Some (_, e) -> callback (Error e)
            | None -> callback (Ok (Array.to_list outcomes))
        in
        Hashtbl.iter
          (fun sh group ->
            let items = List.rev !group in
            let idxs = List.map fst items in
            Client.assign_order (client_exn t sh) ?timeout
              (List.map snd items)
              (function
              | Ok outs ->
                List.iter2 (fun idx o -> outcomes.(idx) <- o) idxs outs;
                finish_one ()
              | Error e ->
                let e =
                  match e with
                  | Error.Rejected (Order.Must_violated g) ->
                    Error.Rejected (Order.Must_violated (List.nth idxs g))
                  | Error.Rejected (Order.Must_self g) ->
                    Error.Rejected (Order.Must_self (List.nth idxs g))
                  | Error.Rejected (Order.Guard_failed g) ->
                    Error.Rejected (Order.Guard_failed (List.nth idxs g))
                  | e -> e
                in
                let first = List.hd idxs in
                (match !err with
                | Some (prev, _) when prev <= first -> ()
                | _ -> err := Some (first, e));
                finish_one ()))
          groups
      | true, _ ->
        (* the serialized path: constraints processed one at a time in
           request order; atomic per constraint, not per batch *)
        enqueue t (fun release_lane ->
            let outcomes = Array.make (List.length specs) Order.Applied in
            let rec step idx = function
              | [] ->
                release_lane ();
                callback (Ok (Array.to_list outcomes))
              | spec :: rest ->
                let k = function
                  | Ok o ->
                    outcomes.(idx) <- o;
                    step (idx + 1) rest
                  | Error e ->
                    release_lane ();
                    callback (Error e)
                in
                if spec.left.Fid.shard = spec.right.Fid.shard then
                  lane_intra t ?timeout spec idx k
                else lane_cross t ?timeout spec idx k
            in
            step 0 specs)
    end

(* ---------- stats plane ---------- *)

let merged_stats t ?(timeout = 5.0) ~targets k =
  Queue.add { g_targets = targets; g_timeout = timeout; g_k = k }
    t.stats_queue;
  stats_start t

let merge_samples per_shard =
  let per_shard =
    List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) per_shard
  in
  let sums = Hashtbl.create 64 in
  let names = ref [] in
  List.iter
    (fun (_, samples) ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt sums name with
          | Some r -> r := !r +. v
          | None ->
            Hashtbl.add sums name (ref v);
            names := name :: !names)
        samples)
    per_shard;
  let agg =
    List.rev_map (fun n -> ("fed." ^ n, !(Hashtbl.find sums n))) !names
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let pers =
    List.concat_map
      (fun (shard, samples) ->
        List.map
          (fun (n, v) -> (Printf.sprintf "shard%d.%s" shard n, v))
          samples)
      per_shard
  in
  (("fed.shards", float_of_int (List.length per_shard)) :: agg) @ pers

(* ---------- introspection and test hooks ---------- *)

let ring t = t.f_ring
let shard_ids t = Array.to_list t.ids
let shard_count t = Array.length t.ids
let client_of t shard = client t shard
let cross_edges t = Hashtbl.length t.edges
let internal_edges t = t.internal_count

let frontier t =
  Array.to_list (Array.mapi (fun i s -> (s, t.frontier_counts.(i))) t.ids)

let edge_frontiers t =
  Hashtbl.fold (fun id e acc -> (id, e.frontier_snap) :: acc) t.edges []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let inconsistencies t = t.bad
let set_fault_injection t f = t.fault <- f

(* ---------- edge-table persistence ---------- *)

(* The edge table is the one piece of federation state the router cannot
   rediscover from the shards: portals are anonymous events to the
   engines.  [dump]/[restore] serialize it so a short-lived process (one
   kronos_cli invocation) can hand its knowledge of committed cross edges
   to the next one — a fresh router with an empty table would answer
   cross queries [Concurrent] and, worse, probe blindly and admit an edge
   that reverses a committed one. *)

let dump t =
  let b = Buffer.create 256 in
  Buffer.add_string b "kronos-fed-state 1\n";
  Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
  |> List.sort (fun a b -> Int.compare a.e_id b.e_id)
  |> List.iter (fun e ->
         let gen =
           match e.gen_pair with
           | Some (x, y) -> Printf.sprintf "%d %d" x y
           | None -> "- -"
         in
         Buffer.add_string b
           (Printf.sprintf "edge %d %s %s %Ld %Ld %d %s\n" e.e_id
              (Fid.to_string e.src) (Fid.to_string e.dst)
              (Event_id.to_int64 e.out_portal)
              (Event_id.to_int64 e.in_portal)
              (if e.internal then 1 else 0)
              gen));
  Hashtbl.fold (fun p () acc -> p :: acc) t.reflected []
  |> List.sort compare
  |> List.iter (fun (x, y) ->
         Buffer.add_string b (Printf.sprintf "refl %d %d\n" x y));
  Buffer.contents b

let restore t s =
  if Hashtbl.length t.edges > 0 then
    Error "restore: router already has cross edges"
  else
    match String.split_on_char '\n' s with
    | header :: rest when String.trim header = "kronos-fed-state 1" -> (
      try
        let edges = ref [] and refl = ref [] in
        List.iter
          (fun line ->
            match String.split_on_char ' ' (String.trim line) with
            | [ "" ] | [] -> ()
            | [ "edge"; e_id; src; dst; outp; inp; internal; gx; gy ] ->
              let fid name = function
                | Some f ->
                  if not (Hashtbl.mem t.slots f.Fid.shard) then
                    failwith
                      (Printf.sprintf "unknown shard %d in %s" f.Fid.shard
                         name);
                  f
                | None -> failwith ("bad fid in " ^ name)
              in
              let gen_pair =
                match (gx, gy) with
                | "-", "-" -> None
                | _ -> Some (int_of_string gx, int_of_string gy)
              in
              edges :=
                ( int_of_string e_id,
                  fid "src" (Fid.of_string src),
                  fid "dst" (Fid.of_string dst),
                  Event_id.of_int64 (Int64.of_string outp),
                  Event_id.of_int64 (Int64.of_string inp),
                  internal = "1",
                  gen_pair )
                :: !edges
            | [ "refl"; x; y ] ->
              refl := (int_of_string x, int_of_string y) :: !refl
            | _ -> failwith ("bad line: " ^ String.trim line))
          rest;
        (* Insert in ascending e_id order so the incremental frontier
           snapshots come out exactly as [record_edge] wrote them. *)
        List.sort (fun (a, _, _, _, _, _, _) (b, _, _, _, _, _, _) ->
            Int.compare a b)
          !edges
        |> List.iter
             (fun (e_id, src, dst, out_portal, in_portal, internal, gen_pair)
             ->
               let i = src.Fid.shard and j = dst.Fid.shard in
               let si = slot t i in
               t.frontier_counts.(si) <- t.frontier_counts.(si) + 1;
               let e =
                 {
                   e_id;
                   src;
                   dst;
                   out_portal;
                   in_portal;
                   frontier_snap = Array.copy t.frontier_counts;
                   internal;
                   gen_pair;
                 }
               in
               Hashtbl.replace t.edges e_id e;
               add_tbl t.direct_tbl (i, j) e_id;
               add_tbl t.egress i e_id;
               add_tbl t.ingress j e_id;
               if internal then t.internal_count <- t.internal_count + 1;
               t.next_edge <- max t.next_edge (e_id + 1));
        List.iter (fun p -> Hashtbl.replace t.reflected p ()) !refl;
        Ok ()
      with
      | Failure m -> Error m
      | Invalid_argument m -> Error m)
    | _ -> Error "restore: not a kronos-fed-state file"
