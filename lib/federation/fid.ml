open Kronos

type t = { shard : int; id : Event_id.t }

let make ~shard id =
  if shard < 0 then invalid_arg "Fid.make: negative shard";
  { shard; id }

let shard t = t.shard
let id t = t.id
let equal a b = a.shard = b.shard && Event_id.equal a.id b.id

let compare a b =
  match Int.compare a.shard b.shard with
  | 0 -> Event_id.compare a.id b.id
  | c -> c

let placement_key t =
  Int64.logxor
    (Ring.hash64 (Int64.of_int t.shard))
    (Event_id.to_int64 t.id)

let hash t = Int64.to_int (Ring.hash64 (placement_key t)) land max_int

let to_string t =
  Printf.sprintf "%d/%Ld" t.shard (Event_id.to_int64 t.id)

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let shard = String.sub s 0 i in
      let raw = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt shard, Int64.of_string_opt raw) with
      | Some shard, Some raw when shard >= 0 -> (
          match Event_id.of_int64 raw with
          | id -> Some { shard; id }
          | exception Invalid_argument _ -> None)
      | _ -> None)

let pp ppf t = Format.fprintf ppf "s%d/%a" t.shard Event_id.pp t.id
