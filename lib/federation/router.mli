(** Federation router: one event graph sharded across N independent Kronos
    chains (DESIGN §12).

    Events live on the shard that minted them; a {!Ring} places fresh
    events.  Intra-shard operations go straight to the owning chain, so
    the write plane scales with the number of shards.  A cross-shard
    [must] edge [a\@i -> b\@j] commits through a deterministic {b
    two-shard commit}: a {e portal} pair is materialized — [a -> out_k] on
    shard [i], [in_k -> b] on shard [j] — by guarded atomic batches
    applied in shard-id order, with abort-safe rollback (released portals
    are unobservable, so an aborted or half-finished commit never leaves a
    visible constraint).

    The router maintains a {e reflection closure}: whenever a local path
    connects an ingress portal to an egress portal on some shard, the
    composed ordering is materialized as a derived (internal) edge between
    the corresponding opposite portals.  The closure gives two guarantees:

    - {b direct witnesses}: any cross-shard ordering [x\@i ⇝ y\@j] is
      witnessed by a direct [i -> j] edge, so [query_order] needs at most
      one probe per side (the "two-shard probe");
    - {b local cycle detection}: an intra-shard assign that would close a
      multi-shard cycle hits a locally materialized portal edge and is
      rejected by the owning engine's ordinary cycle check.

    Per-shard-pair frontier counters short-circuit queries between shard
    pairs with no cross edges, and each committed edge records the
    per-shard frontier at commit time.

    A federation has {e one} router: all ordering mutations must flow
    through it (reads may go anywhere).  Cross-edge commits and
    portal-relevant intra-shard assigns serialize through an internal
    lane; everything else runs concurrently. *)

open Kronos
module Transport = Kronos_transport.Transport
module Error = Kronos_service.Error

type t

type endpoint = { shard : int; coordinator : Transport.addr }
(** One shard of the federation: its id and its chain's coordinator. *)

val create :
  net:Kronos_replication.Chain.msg Transport.t ->
  addr:Transport.addr ->
  shards:endpoint list ->
  ?vnodes:int ->
  ?cache_capacity:int ->
  ?request_timeout:float ->
  unit ->
  t
(** Connect to every shard chain.  The router claims the address block
    [addr .. addr + length shards + 1]: one proxy address per shard plus
    one for the stats plane.  [cache_capacity] sizes each per-shard
    client's order cache. *)

(** {1 Federated ordering specs} *)

type spec = {
  left : Fid.t;
  direction : Order.direction;
  kind : Order.kind;
  right : Fid.t;
}

val constrain :
  kind:Order.kind -> direction:Order.direction -> Fid.t -> Fid.t -> spec

val must_before : Fid.t -> Fid.t -> spec
val must_after : Fid.t -> Fid.t -> spec
val prefer_before : Fid.t -> Fid.t -> spec
val prefer_after : Fid.t -> Fid.t -> spec

(** {1 Operations}

    Semantics match {!Kronos_service.Client} lifted to federated ids,
    with one weakening: a batch that spans shards (or lands on a shard
    with both ingress and egress portals) is atomic {e per constraint},
    not per batch — on failure the reported index is the first constraint
    that was not applied; earlier ones remain.  Single-shard batches on
    portal-quiet shards keep full batch atomicity. *)

val create_event :
  t -> ?timeout:float -> ?key:string -> ((Fid.t, Error.t) result -> unit) -> unit
(** Mint an event.  With [key] the owning shard is [Ring.lookup_string];
    without, shards are used round-robin. *)

val acquire_ref :
  t -> ?timeout:float -> Fid.t -> ((unit, Error.t) result -> unit) -> unit

val release_ref :
  t -> ?timeout:float -> Fid.t -> ((int, Error.t) result -> unit) -> unit

val query_order :
  t ->
  ?timeout:float ->
  (Fid.t * Fid.t) list ->
  ((Order.relation list, Error.t) result -> unit) ->
  unit
(** Scatter-gather: same-shard pairs are answered by one batched query per
    shard; cross-shard pairs by frontier comparison (no cross edges
    between the two shards — [Concurrent] with no probe) or a two-shard
    probe over the direct witness portals. *)

val assign_order :
  t -> ?timeout:float -> spec list -> ((Order.outcome list, Error.t) result -> unit) -> unit

(** {1 Stats plane} *)

val merged_stats :
  t ->
  ?timeout:float ->
  targets:(int * Transport.addr) list ->
  ((int * (string * float) list) list -> unit) ->
  unit
(** Scatter [Get_stats] to one replica (or coordinator) per shard and
    gather the registries: the callback receives [(shard, samples)] for
    every shard that answered within [timeout] (default 5 s).  Use
    {!merge_samples} to flatten the result into one registry view. *)

val merge_samples :
  (int * (string * float) list) list -> (string * float) list
(** One merged registry: per-shard series prefixed ["shard<i>."] plus
    summed aggregates prefixed ["fed."] — the federated replacement for a
    single replica's [Get_stats] answer. *)

(** {1 Introspection} *)

val ring : t -> Ring.t
val shard_ids : t -> int list
val shard_count : t -> int

val client_of : t -> int -> Kronos_service.Client.t option
(** The per-shard service client (tests and the CLI stats plane). *)

val cross_edges : t -> int
(** Committed cross edges, including derived (internal) ones. *)

val internal_edges : t -> int

val frontier : t -> (int * int) list
(** Per-shard committed cross-edge counts [(shard, egress count)] — the
    frontier table queries compare against. *)

val edge_frontiers : t -> (int * int array) list
(** Per committed edge: its id and the frontier snapshot recorded at
    commit (ascending shard order), for tests and observability. *)

val inconsistencies : t -> int
(** Number of reflection batches rejected for an already-acked edge set —
    0 unless the single-router discipline was violated. *)

(** {1 Edge-table persistence}

    The edge table is the one piece of federation state a router cannot
    rediscover from the shards (portals are anonymous events to the
    engines), and the single-router discipline requires a successor
    router to inherit it: a fresh router with an empty table answers
    cross queries [Concurrent] and can admit an edge reversing a
    committed one.  Short-lived processes — each [kronos_cli] invocation
    — persist it with [dump] and hand it to the next invocation via
    [restore]. *)

val dump : t -> string
(** Serialize the committed cross-edge table (edges, reflection marks)
    to a stable line-oriented text format. *)

val restore : t -> string -> (unit, string) result
(** Load a {!dump} into a router that has not committed any cross edge
    yet.  Fails (without partial effects on the edge registry) on a
    malformed dump, an unknown shard id, or a router that already holds
    edges. *)

(** {1 Test hooks} *)

type fault =
  [ `Probe  (** before the conflict probe *)
  | `Prepare_create  (** before creating the first shard's portal *)
  | `Prepare_apply  (** before the first shard's guarded batch *)
  | `Apply_create  (** before creating the second shard's portal *)
  | `Apply_apply  (** before the second shard's guarded batch *)
  | `Record  (** before recording the edge in the registry *)
  | `Reflect  (** before the reflection closure *) ]

val set_fault_injection : t -> (fault -> bool) option -> unit
(** When the hook returns [true] for a step of a cross-edge commit, the
    commit aborts at that step (rolling back whatever was applied) and the
    caller sees [Error Timeout] — the harness injects an abort at every
    step and checks that no half-applied constraint is ever observable. *)
