(** Federation deployment helper: start [shards] independent chains over
    one transport plus a {!Router} connected to all of them, under a fixed
    address plan:

    - shard [s] (0-based position) replicas: [100 * (s + 1) + r];
    - shard [s] coordinator: [1000 + s];
    - router address block: [2000 ..] (one proxy per shard + stats plane).

    The deterministic simnet federation harness, the federation benches and
    the determinism CI gate all deploy through this module, so a seed fully
    determines the run. *)

module Transport = Kronos_transport.Transport

type t = {
  router : Router.t;
  clusters : (int * Kronos_service.Server.cluster) list;
      (** shard id -> its chain, ascending *)
  endpoints : Router.endpoint list;
  per_shard : int;  (** replicas per shard, as deployed *)
}

val deploy :
  net:Kronos_replication.Chain.msg Transport.t ->
  ?shards:int list ->
  ?replicas_per_shard:int ->
  ?engine_config:Kronos.Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  ?cache_capacity:int ->
  ?request_timeout:float ->
  ?vnodes:int ->
  ?ping_interval:float ->
  ?failure_timeout:float ->
  unit ->
  t
(** Defaults: shard ids [[0; 1]], 3 replicas each.  [service] models
    replica CPU capacity per chain (the write-scaling bench fixes it so
    aggregate throughput is limited by shard service time, not by the
    simulated network). *)

val cluster_of : t -> int -> Kronos_service.Server.cluster option

val replica_addrs : t -> int -> Transport.addr list
(** Replica addresses of one shard under the address plan (position-based,
    matching what {!deploy} started). *)

val coordinator_addr : t -> int -> Transport.addr
(** @raise Not_found on an unknown shard id. *)

val stats_targets : t -> (int * Transport.addr) list
(** One [(shard, coordinator)] pair per shard — ready to pass to
    {!Router.merged_stats}. *)
