module Transport = Kronos_transport.Transport
module Server = Kronos_service.Server

type t = {
  router : Router.t;
  clusters : (int * Server.cluster) list;
  endpoints : Router.endpoint list;
  per_shard : int;
}

let replica_base pos = 100 * (pos + 1)
let coordinator_base = 1000
let router_base = 2000

let deploy ~net ?(shards = [ 0; 1 ]) ?(replicas_per_shard = 3) ?engine_config
    ?service ?cache_capacity ?request_timeout ?vnodes ?ping_interval
    ?failure_timeout () =
  if shards = [] then invalid_arg "Deploy.deploy: no shards";
  if replicas_per_shard < 1 then
    invalid_arg "Deploy.deploy: need at least one replica per shard";
  let shards = List.sort_uniq Int.compare shards in
  let clusters, endpoints =
    List.mapi
      (fun pos shard ->
        let coordinator = coordinator_base + pos in
        let replicas =
          List.init replicas_per_shard (fun r -> replica_base pos + r)
        in
        let cluster =
          Server.deploy ~net ~coordinator ~replicas ?engine_config ?service
            ?ping_interval ?failure_timeout ()
        in
        ((shard, cluster), { Router.shard; coordinator }))
      shards
    |> List.split
  in
  let router =
    Router.create ~net ~addr:router_base ~shards:endpoints ?vnodes
      ?cache_capacity ?request_timeout ()
  in
  { router; clusters; endpoints; per_shard = replicas_per_shard }

let cluster_of t shard = List.assoc_opt shard t.clusters

let pos_of t shard =
  let rec go i = function
    | [] -> raise Not_found
    | (s, _) :: _ when s = shard -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.clusters

let replica_addrs t shard =
  match cluster_of t shard with
  | None -> []
  | Some _ ->
    let base = replica_base (pos_of t shard) in
    List.init t.per_shard (fun r -> base + r)

let coordinator_addr t shard = coordinator_base + pos_of t shard

let stats_targets t =
  List.map (fun e -> (e.Router.shard, e.Router.coordinator)) t.endpoints
