(* End-to-end demo: a replicated Kronos deployment on the simulated network,
   driven through the typed client, with a mid-run failure to show the chain
   reconfiguring — a miniature of the whole system.

   The deployment is durable: each replica keeps a write-ahead log and
   snapshots in a real directory under /tmp, so the killed replica is
   restarted from its own disk (recovering its engine locally and fetching
   only the missed suffix from the chain) rather than rebuilt from scratch.

   Run with: dune exec bin/kronos_demo.exe *)

open Kronos
open Kronos_simnet
module Server = Kronos_service.Server
module Client = Kronos_service.Client

let () =
  Format.printf "== Kronos service demo: durable 3-replica chain + failure ==@.";
  let sim = Sim.create ~seed:2026L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let base = Printf.sprintf "/tmp/kronos-demo-%d" (Unix.getpid ()) in
  let storage_of addr =
    Kronos_durability.Storage.files
      ~dir:(Filename.concat base (Printf.sprintf "replica-%d" addr))
  in
  let durability = Server.durability ~snapshot_every:8 ~storage_of () in
  let cluster =
    Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ] ~durability
      ~ping_interval:0.2 ~failure_timeout:0.8 ()
  in
  Format.printf "replica WALs and snapshots live under %s@." base;
  let client =
    Client.create ~net ~addr:2000 ~coordinator:1000 ~request_timeout:0.5 ()
  in
  let await f =
    let r = ref None in
    f (fun x -> r := Some x);
    while !r = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    Option.get !r
  in
  let a = Result.get_ok (await (Client.create_event client)) in
  let b = Result.get_ok (await (Client.create_event client)) in
  Format.printf "created %a and %a (t=%.3fs virtual)@." Event_id.pp a Event_id.pp b
    (Sim.now sim);
  (match
     await (Client.assign_order client [ Order.must_before a b ])
   with
   | Ok _ -> Format.printf "ordered %a -> %a@." Event_id.pp a Event_id.pp b
   | Error e -> Format.printf "assign failed: %a@." Kronos_service.Error.pp e);
  (* kill the middle replica; the coordinator reconfigures the chain *)
  Format.printf "killing replica 1...@.";
  Server.crash cluster 1;
  Sim.run ~until:(Sim.now sim +. 3.0) sim;
  (match await (Client.query_order client [ (a, b); (b, a) ]) with
   | Ok rels ->
     Format.printf "order survives the failure: %a@."
       (Format.pp_print_list ~pp_sep:Format.pp_print_space Order.pp_relation)
       rels
   | Error e -> Format.printf "query failed: %a@." Kronos_service.Error.pp e);
  (* writes the crashed replica will have missed *)
  let c = Result.get_ok (await (Client.create_event client)) in
  ignore (await (Client.assign_order client [ Order.must_before b c ]));
  (* restart it from its own disk: the engine recovers from snapshot + WAL
     and the chain ships only the entries it missed *)
  Format.printf "restarting replica 1 from its write-ahead log...@.";
  Server.restart_replica cluster 1 ();
  Sim.run ~until:(Sim.now sim +. 3.0) sim;
  (match (Server.replica_of cluster 1, Server.engine_of cluster 1) with
   | Some replica, Some engine ->
     Format.printf
       "replica 1 recovered: %d events, %d edges, seq %d (snapshot transfers: %d)@."
       (Engine.live_events engine) (Engine.edges engine)
       (Kronos_replication.Chain.Replica.last_applied replica)
       (Kronos_replication.Chain.Replica.snapshot_installs replica)
   | _ -> ());
  (* a blank replica can still join with a full state transfer *)
  Format.printf "joining fresh replica 7...@.";
  Server.join cluster 7 ();
  Sim.run ~until:(Sim.now sim +. 3.0) sim;
  (match Server.engine_of cluster 7 with
   | Some engine ->
     Format.printf "fresh replica synced: %d events, %d edges@."
       (Engine.live_events engine) (Engine.edges engine)
   | None -> ());
  let d = Result.get_ok (await (Client.create_event client)) in
  (match
     await (Client.assign_order client [ Order.must_before c d ])
   with
   | Ok _ ->
     Format.printf "new writes flow through the healed chain: %a -> %a@."
       Event_id.pp c Event_id.pp d
   | Error e -> Format.printf "assign failed: %a@." Kronos_service.Error.pp e);
  Format.printf "done (%.3fs of virtual time)@." (Sim.now sim)
