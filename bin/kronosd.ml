(* kronosd: host one Kronos replica (and optionally the chain coordinator)
   over real TCP.

   A minimal 3-replica chain on localhost:

     kronosd --addr 1 --port 4001 --coordinate \
             --peer 2@127.0.0.1:4002 --peer 3@127.0.0.1:4003 &
     kronosd --addr 2 --port 4002 --coordinator 1000@127.0.0.1:4001 \
             --peer 1@127.0.0.1:4001 --peer 3@127.0.0.1:4003 &
     kronosd --addr 3 --port 4003 --coordinator 1000@127.0.0.1:4001 \
             --peer 1@127.0.0.1:4001 --peer 2@127.0.0.1:4002 &

   The first process hosts the coordinator (address 1000) next to replica 1;
   the others dial it and join the chain at the tail.  Every daemon must
   list the other replicas with --peer: chain neighbours send to each other
   directly, so each process needs a route to any replica it may precede or
   follow (exactly as in etcd's initial-cluster).  Add --data-dir to make a
   replica durable: it logs every applied command and recovers from its own
   snapshot + WAL when restarted with the same flags.

   In a federated deployment (N independent chains behind one federation
   router, see DESIGN.md §12) each daemon declares its slot with
   --shard i/N: the flag tags the process's metrics registry with the
   shard identity (so the router's merged stats view can tell shards
   apart) and, with --coordinate, defaults the hosted coordinator's
   address to 1000+i — the address plan the federation router and
   kronos_cli --shards expect. *)

module Chain = Kronos_replication.Chain
module Server = Kronos_service.Server
module Transport = Kronos_transport.Transport
module Tcp = Kronos_transport.Tcp_transport
module Event_loop = Kronos_transport.Event_loop

let usage = "kronosd --addr N --port P [options]"

type peer = { addr : int; host : string; port : int }

(* "ADDR@HOST:PORT" *)
let parse_endpoint what s =
  match String.index_opt s '@' with
  | None -> raise (Arg.Bad (what ^ ": expected ADDR@HOST:PORT, got " ^ s))
  | Some i -> (
      let addr = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> raise (Arg.Bad (what ^ ": expected ADDR@HOST:PORT, got " ^ s))
      | Some j -> (
          try
            {
              addr = int_of_string addr;
              host = String.sub rest 0 j;
              port = int_of_string (String.sub rest (j + 1) (String.length rest - j - 1));
            }
          with Failure _ ->
            raise (Arg.Bad (what ^ ": expected ADDR@HOST:PORT, got " ^ s))))

let () =
  let addr = ref (-1) in
  let port = ref (-1) in
  let host = ref "127.0.0.1" in
  let peers = ref [] in
  let coordinator = ref None in
  let coordinate = ref false in
  let coordinator_addr = ref (-1) in
  let shard = ref None in
  let data_dir = ref "" in
  let metrics_addr = ref "" in
  let no_metrics = ref false in
  let snapshot_every = ref 1024 in
  let snapshot_wal_bytes = ref 0 in
  let max_delta_chain = ref 8 in
  let query_domains = ref (max 1 (Domain.recommended_domain_count () - 1)) in
  let ping_interval = ref 0.2 in
  let failure_timeout = ref 1.0 in
  let verbose = ref false in
  let spec =
    [
      ("--addr", Arg.Set_int addr, "N this replica's address (required)");
      ("--port", Arg.Set_int port, "P TCP port to listen on, 0 = ephemeral (required)");
      ("--host", Arg.Set_string host, "H interface to bind (default 127.0.0.1)");
      ( "--peer",
        Arg.String (fun s -> peers := parse_endpoint "--peer" s :: !peers),
        "A@H:P route for another process's address (repeatable)" );
      ( "--coordinator",
        Arg.String (fun s -> coordinator := Some (parse_endpoint "--coordinator" s)),
        "A@H:P join the chain run by this coordinator" );
      ("--coordinate", Arg.Set coordinate, " host the coordinator in this process");
      ( "--coordinator-addr",
        Arg.Set_int coordinator_addr,
        "N address of the hosted coordinator (default 1000, or 1000+i with \
         --shard i/N; with --coordinate)" );
      ( "--shard",
        Arg.String
          (fun s ->
            match String.index_opt s '/' with
            | None -> raise (Arg.Bad ("--shard: expected i/N, got " ^ s))
            | Some k -> (
                match
                  ( int_of_string_opt (String.sub s 0 k),
                    int_of_string_opt
                      (String.sub s (k + 1) (String.length s - k - 1)) )
                with
                | Some i, Some n when 0 <= i && i < n -> shard := Some (i, n)
                | _ -> raise (Arg.Bad ("--shard: expected i/N, got " ^ s)))),
        "i/N serve shard i of an N-shard federation" );
      ("--data-dir", Arg.Set_string data_dir, "DIR durable storage directory");
      ( "--metrics-addr",
        Arg.Set_string metrics_addr,
        "[H:]P serve the metrics text page over one-shot TCP (0 = ephemeral)" );
      ( "--no-metrics",
        Arg.Set no_metrics,
        " switch the metrics registry to the no-op sink" );
      ( "--snapshot-every",
        Arg.Set_int snapshot_every,
        "N snapshot + truncate the WAL every N commands (default 1024)" );
      ( "--snapshot-wal-bytes",
        Arg.Set_int snapshot_wal_bytes,
        "B snapshot once B WAL bytes accrue, writing incremental deltas \
         between full snapshots (0 = count-based --snapshot-every, the \
         default)" );
      ( "--max-delta-chain",
        Arg.Set_int max_delta_chain,
        "N deltas between full snapshots under --snapshot-wal-bytes \
         (default 8; 0 = full snapshots only)" );
      ( "--query-domains",
        Arg.Set_int query_domains,
        "N reader domains answering queries over published views (default \
         cores-1, min 1; 0 keeps all queries on the event-loop thread)" );
      ( "--ping-interval",
        Arg.Set_float ping_interval,
        "S coordinator ping period (default 0.2, with --coordinate)" );
      ( "--failure-timeout",
        Arg.Set_float failure_timeout,
        "S remove replicas silent for S seconds (default 1.0, with --coordinate)" );
      ("--verbose", Arg.Set verbose, " log connection and chain activity");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !addr < 0 || !port < 0 then begin
    prerr_endline usage;
    exit 2
  end;
  if !coordinate && !coordinator <> None then begin
    prerr_endline "kronosd: --coordinate and --coordinator are exclusive";
    exit 2
  end;
  if (not !coordinate) && !coordinator = None then begin
    prerr_endline "kronosd: need --coordinate or --coordinator A@H:P";
    exit 2
  end;
  if !verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if !no_metrics then Kronos_metrics.set_enabled false;
  (* Resolve the coordinator address under the federation address plan. *)
  if !coordinator_addr < 0 then
    coordinator_addr :=
      (match !shard with Some (i, _) -> 1000 + i | None -> 1000);
  (match !shard with
   | None -> ()
   | Some (i, n) ->
     let scope = Kronos_metrics.scope "federation" in
     Kronos_metrics.Gauge.set (Kronos_metrics.gauge scope "shard") i;
     Kronos_metrics.Gauge.set (Kronos_metrics.gauge scope "shards") n;
     Printf.printf "kronosd: serving shard %d/%d\n%!" i n);

  let loop = Event_loop.create () in
  let tcp =
    Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
      ~decode:Kronos_replication.Chain_codec.decode ()
  in
  let actual_port = Tcp.listen tcp ~host:!host ~port:!port () in
  (match !metrics_addr with
   | "" -> ()
   | spec ->
     let mhost, mport =
       match String.rindex_opt spec ':' with
       | None -> ("127.0.0.1", int_of_string spec)
       | Some i ->
         ( String.sub spec 0 i,
           int_of_string (String.sub spec (i + 1) (String.length spec - i - 1))
         )
     in
     let server =
       Kronos_transport.Metrics_server.start ~loop ~host:mhost ~port:mport ()
     in
     Printf.printf "kronosd: metrics on %s:%d\n%!" mhost
       (Kronos_transport.Metrics_server.port server));
  List.iter (fun p -> Tcp.add_peer tcp p.addr ~host:p.host ~port:p.port) !peers;
  (match !coordinator with
   | Some c -> Tcp.add_peer tcp c.addr ~host:c.host ~port:c.port
   | None -> ());
  let net = Tcp.transport tcp in

  let durability =
    if !data_dir = "" then None
    else
      let policy =
        if !snapshot_wal_bytes <= 0 then None
        else
          Some
            (Server.snapshot_policy
               ~wal_bytes_per_snapshot:!snapshot_wal_bytes
               ~max_delta_chain:!max_delta_chain ())
      in
      Some
        (Server.durability ~snapshot_every:!snapshot_every ?policy
           ~storage_of:(fun a ->
             Kronos_durability.Storage.files
               ~dir:(Filename.concat !data_dir (string_of_int a)))
           ())
  in
  let query_pool =
    if !query_domains <= 0 then None
    else begin
      let pool =
        Kronos_service.Query_pool.create ~loop ~domains:!query_domains ()
      in
      Printf.printf "kronosd: %d query domain(s) over published views\n%!"
        (Kronos_service.Query_pool.domains pool);
      Some pool
    end
  in
  let replica, _engine =
    Server.start_node ~net ~addr:!addr ?durability ?query_pool ()
  in
  Printf.printf "kronosd: replica %d listening on %s:%d (recovered seq %d)\n%!"
    !addr !host actual_port
    (Chain.Replica.last_applied replica);

  let coordinator_at =
    match !coordinator with
    | Some c -> c.addr
    | None ->
      ignore
        (Chain.Coordinator.create ~net ~addr:!coordinator_addr ~chain:[ !addr ]
           ~ping_interval:!ping_interval ~failure_timeout:!failure_timeout ());
      Printf.printf "kronosd: coordinating as address %d\n%!" !coordinator_addr;
      !coordinator_addr
  in

  (* Join (or re-join after recovery) by asking the coordinator; retry until
     this replica shows up in the broadcast configuration. *)
  let in_chain () =
    List.mem !addr (Chain.Replica.config replica).Chain.chain
  in
  let join_timer = ref None in
  let joining = ref (not (in_chain ())) in
  if !joining then begin
    Chain.Replica.announce_join replica ~coordinator:coordinator_at;
    join_timer :=
      Some
        (Transport.every net ~period:0.5 (fun () ->
             if in_chain () then begin
               joining := false;
               Option.iter Transport.cancel !join_timer
             end
             else Chain.Replica.announce_join replica ~coordinator:coordinator_at))
  end;

  (* Report chain membership changes. *)
  let last_version = ref (-1) in
  ignore
    (Transport.every net ~period:0.25 (fun () ->
         let cfg = Chain.Replica.config replica in
         if cfg.Chain.version <> !last_version then begin
           last_version := cfg.Chain.version;
           Printf.printf "kronosd: chain v%d = [%s]\n%!" cfg.Chain.version
             (String.concat "; " (List.map string_of_int cfg.Chain.chain))
         end));

  let stop = ref false in
  let quit _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Event_loop.run_forever loop ~stop:(fun () ->
      !stop || Chain.Replica.is_removed replica);
  if Chain.Replica.is_removed replica then
    Printf.printf "kronosd: removed from the chain, exiting\n%!"
  else Printf.printf "kronosd: shutting down\n%!";
  Option.iter Kronos_service.Query_pool.stop query_pool;
  Tcp.shutdown tcp
