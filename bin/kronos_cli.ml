(* kronos_cli: talk to a kronosd chain over TCP.

     kronos_cli --peer 1000@127.0.0.1:4001 --peer 1@127.0.0.1:4001 \
                --peer 2@127.0.0.1:4002 --peer 3@127.0.0.1:4003 \
                --coordinator 1000 CMD

   CMD:
     create                  mint an event, print its id
     assign E1 E2            order E1 happens-before E2 (ids as printed)
     query E1 E2             ask the relation between two events
     release E               drop the client reference on an event
     load                    closed-loop generator: create+assign pairs,
                             report throughput and latency percentiles
     stats [ADDR]            fetch and pretty-print the live metrics of one
                             replica (default: the first --peer); --watch
                             re-polls and prints only the changed series

   Every replica endpoint should be listed with --peer: the CLI dials them
   all eagerly so whichever replica is the chain tail knows the return
   route for replies. *)

open Kronos
module Chain = Kronos_replication.Chain
module Client = Kronos_service.Client
module Transport = Kronos_transport.Transport
module Tcp = Kronos_transport.Tcp_transport
module Event_loop = Kronos_transport.Event_loop

let usage =
  "kronos_cli [options] (create | assign E1 E2 | query E1 E2 | release E | \
   load | stats [ADDR])"

type peer = { addr : int; host : string; port : int }

let parse_endpoint s =
  match String.index_opt s '@' with
  | None -> raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))
  | Some i -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))
      | Some j -> (
          try
            {
              addr = int_of_string (String.sub s 0 i);
              host = String.sub rest 0 j;
              port = int_of_string (String.sub rest (j + 1) (String.length rest - j - 1));
            }
          with Failure _ ->
            raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))))

let event_of_string s =
  match Event_id.of_int64 (Int64.of_string s) with
  | e -> e
  | exception _ ->
    prerr_endline ("kronos_cli: not an event id: " ^ s);
    exit 2

let string_of_event e = Int64.to_string (Event_id.to_int64 e)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let () =
  let peers = ref [] in
  let coordinator = ref 1000 in
  (* Replicas deduplicate writes by (client address, request id), so every
     invocation needs a fresh address or it would be served the cached
     responses of an earlier run. *)
  let addr = ref (10000 + (Unix.getpid () mod 1_000_000)) in
  let timeout = ref 5.0 in
  let ops = ref 1000 in
  let concurrency = ref 8 in
  let watch = ref false in
  let interval = ref 1.0 in
  let rest = ref [] in
  let spec =
    [
      ( "--peer",
        Arg.String (fun s -> peers := parse_endpoint s :: !peers),
        "A@H:P endpoint of a kronosd (repeat for every replica)" );
      ("--coordinator", Arg.Set_int coordinator, "N coordinator address (default 1000)");
      ("--addr", Arg.Set_int addr, "N this client's address (default pid-derived)");
      ("--timeout", Arg.Set_float timeout, "S per-request deadline (default 5.0)");
      ("--ops", Arg.Set_int ops, "N operations for load (default 1000)");
      ("--concurrency", Arg.Set_int concurrency, "N closed loops for load (default 8)");
      ("--watch", Arg.Set watch, " with stats: keep polling and print diffs");
      ( "--interval",
        Arg.Set_float interval,
        "S polling period for stats --watch (default 1.0)" );
    ]
  in
  Arg.parse spec (fun a -> rest := a :: !rest) usage;
  let cmd = List.rev !rest in
  if !peers = [] then begin
    prerr_endline "kronos_cli: need at least one --peer";
    exit 2
  end;

  let loop = Event_loop.create () in
  let tcp =
    Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
      ~decode:Kronos_replication.Chain_codec.decode ()
  in
  List.iter (fun p -> Tcp.add_peer tcp p.addr ~host:p.host ~port:p.port) !peers;
  let net = Tcp.transport tcp in
  let client =
    Client.create ~net ~addr:!addr ~coordinator:!coordinator ~request_timeout:0.5 ()
  in
  (* Dial every replica now so the tail learns our return route before the
     first request reaches it. *)
  Tcp.connect_peers tcp;

  let fail_timeout () =
    prerr_endline "kronos_cli: request timed out";
    exit 1
  in
  let fail_error e =
    Format.eprintf "kronos_cli: %a@." Kronos_service.Error.pp e;
    exit 1
  in
  (* Run the event loop until one asynchronous call completes. *)
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    if not
         (Event_loop.run_until loop
            ~deadline:(Event_loop.now loop +. !timeout +. 2.0)
            (fun () -> !result <> None))
    then fail_timeout ();
    Option.get !result
  in
  (* The client-side order cache counters, printed wherever server-side
     numbers appear so both cache planes (client order cache, server
     traversal memo) can be read side by side. *)
  let print_cache_stats ~prefix =
    match Client.cache_stats client with
    | None -> Printf.printf "%sclient order cache disabled\n" prefix
    | Some s ->
      Printf.printf
        "%sclient.order_cache.size      %d/%d\n\
         %sclient.order_cache.hits      %d\n\
         %sclient.order_cache.misses    %d\n\
         %sclient.order_cache.prefills  %d\n\
         %sclient.order_cache.hit_rate  %.1f%%\n"
        prefix s.Order_cache.stat_size s.Order_cache.stat_capacity
        prefix s.Order_cache.stat_hits
        prefix s.Order_cache.stat_misses
        prefix s.Order_cache.stat_prefills
        prefix (100. *. Order_cache.hit_rate s);
      flush stdout
  in
  let run_load () =
    let lat = ref [] in
    let completed = ref 0 in
    let failures = ref 0 in
    let per_loop = max 1 (!ops / !concurrency) in
    let live = ref !concurrency in
    let started = Unix.gettimeofday () in
    (* Each closed loop alternates create_event with an assign_order that
       chains the new event after the previous one — the paper's
       "serialization" pattern — measuring each call's latency. *)
    let rec step prev n =
      if n = 0 then decr live
      else begin
        let t0 = Unix.gettimeofday () in
        Client.create_event client ~timeout:!timeout (function
          | Error _ ->
            incr failures;
            step prev (n - 1)
          | Ok e -> (
            lat := (Unix.gettimeofday () -. t0) :: !lat;
            incr completed;
            match prev with
            | None -> step (Some e) (n - 1)
            | Some p ->
              let t1 = Unix.gettimeofday () in
              Client.assign_order client ~timeout:!timeout
                [ Order.must_before p e ]
                (fun r ->
                  (match r with
                   | Ok _ ->
                     lat := (Unix.gettimeofday () -. t1) :: !lat;
                     incr completed
                   | Error _ -> incr failures);
                  step (Some e) (n - 1))))
      end
    in
    for _ = 1 to !concurrency do
      step None per_loop
    done;
    Event_loop.run_forever loop ~stop:(fun () -> !live = 0);
    let elapsed = Unix.gettimeofday () -. started in
    let sorted = Array.of_list !lat in
    Array.sort compare sorted;
    Printf.printf "ops        %d (%d failed)\n" !completed !failures;
    Printf.printf "elapsed    %.3f s\n" elapsed;
    Printf.printf "throughput %.0f op/s\n" (float_of_int !completed /. elapsed);
    Printf.printf "latency    p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      (1e3 *. percentile sorted 0.50)
      (1e3 *. percentile sorted 0.95)
      (1e3 *. percentile sorted 0.99);
    print_cache_stats ~prefix:""
  in
  (* Fetch one replica's process-wide metrics via the Get_stats admin RPC.
     The reply bypasses the proxy (which only understands chain responses),
     so it is received on a dedicated address with a raw handler. *)
  let run_stats target =
    let stats_addr = !addr + 1 in
    let received = ref None in
    Transport.register net stats_addr (fun ~src:_ msg ->
        match (msg : Chain.msg) with
        | Chain.Stats_is { samples } -> received := Some samples
        | _ -> ());
    let request () =
      Transport.send net ~src:stats_addr ~dst:target
        (Chain.Get_stats { client = stats_addr })
    in
    let fmt_value v =
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.9g" v
    in
    let print_samples ?prev samples =
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 0 samples
      in
      List.iter
        (fun (name, v) ->
          match prev with
          | None -> Printf.printf "%-*s  %s\n" width name (fmt_value v)
          | Some tbl -> (
              match Hashtbl.find_opt tbl name with
              | Some old when old = v -> ()
              | Some old ->
                Printf.printf "%-*s  %s  (%+g)\n" width name (fmt_value v)
                  (v -. old)
              | None -> Printf.printf "%-*s  %s  (new)\n" width name (fmt_value v)))
        samples;
      flush stdout
    in
    let await_reply () =
      if not
           (Event_loop.run_until loop
              ~deadline:(Event_loop.now loop +. !timeout)
              (fun () -> !received <> None))
      then fail_timeout ();
      let samples = Option.get !received in
      received := None;
      samples
    in
    if not !watch then begin
      print_samples (request (); await_reply ());
      print_cache_stats ~prefix:""
    end
    else begin
      let stop = ref false in
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
      let prev = Hashtbl.create 256 in
      let first = ref true in
      while not !stop do
        let samples = (request (); await_reply ()) in
        if !first then begin
          print_samples samples;
          print_cache_stats ~prefix:""
        end
        else begin
          Printf.printf "--\n";
          print_samples ~prev samples
        end;
        first := false;
        List.iter (fun (n, v) -> Hashtbl.replace prev n v) samples;
        ignore
          (Event_loop.run_until loop
             ~deadline:(Event_loop.now loop +. !interval)
             (fun () -> !stop))
      done
    end
  in
  (match cmd with
   | [ "create" ] -> (
       match await (Client.create_event client ~timeout:!timeout) with
       | Ok e -> Printf.printf "%s\n" (string_of_event e)
       | Error e -> fail_error e)
   | [ "assign"; e1; e2 ] -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match
         await
           (Client.assign_order client ~timeout:!timeout
              [ Order.must_before e1 e2 ])
       with
       | Ok [ outcome ] -> Format.printf "%a@." Order.pp_outcome outcome
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "query"; e1; e2 ] -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match await (Client.query_order client ~timeout:!timeout [ (e1, e2) ]) with
       | Ok [ rel ] -> Format.printf "%a@." Order.pp_relation rel
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "release"; e ] -> (
       match await (Client.release_ref client ~timeout:!timeout (event_of_string e)) with
       | Ok n -> Printf.printf "collected %d\n" n
       | Error e -> fail_error e)
   | [ "load" ] -> run_load ()
   | [ "stats" ] -> run_stats (List.hd (List.rev !peers)).addr
   | [ "stats"; target ] -> (
       match int_of_string_opt target with
       | Some a -> run_stats a
       | None ->
         prerr_endline ("kronos_cli: stats: not an address: " ^ target);
         exit 2)
   | _ ->
     prerr_endline usage;
     exit 2);
  Tcp.shutdown tcp
