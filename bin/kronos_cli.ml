(* kronos_cli: talk to a kronosd chain over TCP.

     kronos_cli --peer 1000@127.0.0.1:4001 --peer 1@127.0.0.1:4001 \
                --peer 2@127.0.0.1:4002 --peer 3@127.0.0.1:4003 \
                --coordinator 1000 CMD

   CMD:
     create                  mint an event, print its id
     assign E1 E2            order E1 happens-before E2 (ids as printed)
     query E1 E2             ask the relation between two events; with
                             --verify the answer must come with a
                             happens-before certificate that checks out
                             locally (DESIGN.md §13) or the call fails
     proof E1 E2             fetch and verify a certificate and print it
                             (endpoint commitments and the event path)
     release E               drop the client reference on an event
     load                    closed-loop generator: create+assign pairs,
                             report throughput and latency percentiles
     stats [ADDR]            fetch and pretty-print the live metrics of one
                             replica (default: the first --peer); --watch
                             re-polls and prints only the changed series

   Every replica endpoint should be listed with --peer: the CLI dials them
   all eagerly so whichever replica is the chain tail knows the return
   route for replies.

   Federation mode (--shards N, see DESIGN.md §12) talks to N kronosd
   chains through a federation router.  Event ids then read "S/ID" (shard
   and local id, as printed by create); assign and query may mix shards —
   cross-shard constraints go through the router's two-shard commit.
   Shard i's coordinator defaults to address 1000+i (the kronosd
   --shard i/N plan); override any of them with --shard i@ADDR.  In this
   mode "load" scatters its closed loops over the shards and reports
   per-shard assign/query latency percentiles, and "stats" merges every
   shard's registry into one view (fed.* aggregates plus shardN.* series).

   The router's cross-edge table must survive across one-shot invocations
   (a federation has one logical router); it is carried in --fed-state
   FILE (default .kronos-fed.state in the working directory). *)

open Kronos
module Chain = Kronos_replication.Chain
module Client = Kronos_service.Client
module Transport = Kronos_transport.Transport
module Tcp = Kronos_transport.Tcp_transport
module Event_loop = Kronos_transport.Event_loop
module Fid = Kronos_federation.Fid
module Router = Kronos_federation.Router

let usage =
  "kronos_cli [options] (create | assign E1 E2 | query [--verify] E1 E2 | \
   proof E1 E2 | release E | load | stats [ADDR])\n\
   federation: add --shards N (ids become S/ID; stats merges all shards)"

type peer = { addr : int; host : string; port : int }

let parse_endpoint s =
  match String.index_opt s '@' with
  | None -> raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))
  | Some i -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))
      | Some j -> (
          try
            {
              addr = int_of_string (String.sub s 0 i);
              host = String.sub rest 0 j;
              port = int_of_string (String.sub rest (j + 1) (String.length rest - j - 1));
            }
          with Failure _ ->
            raise (Arg.Bad ("--peer: expected ADDR@HOST:PORT, got " ^ s))))

let event_of_string s =
  match Event_id.of_int64 (Int64.of_string s) with
  | e -> e
  | exception _ ->
    prerr_endline ("kronos_cli: not an event id: " ^ s);
    exit 2

let string_of_event e = Int64.to_string (Event_id.to_int64 e)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let () =
  let peers = ref [] in
  let coordinator = ref 1000 in
  (* Replicas deduplicate writes by (client address, request id), so every
     invocation needs a fresh address or it would be served the cached
     responses of an earlier run. *)
  let addr = ref (10000 + (Unix.getpid () mod 1_000_000)) in
  let timeout = ref 5.0 in
  let ops = ref 1000 in
  let concurrency = ref 8 in
  let watch = ref false in
  let verify = ref false in
  let interval = ref 1.0 in
  let shards = ref 0 in
  let shard_coordinators = ref [] in
  let fed_state = ref ".kronos-fed.state" in
  let rest = ref [] in
  let spec =
    [
      ( "--peer",
        Arg.String (fun s -> peers := parse_endpoint s :: !peers),
        "A@H:P endpoint of a kronosd (repeat for every replica)" );
      ("--coordinator", Arg.Set_int coordinator, "N coordinator address (default 1000)");
      ("--addr", Arg.Set_int addr, "N this client's address (default pid-derived)");
      ("--timeout", Arg.Set_float timeout, "S per-request deadline (default 5.0)");
      ("--ops", Arg.Set_int ops, "N operations for load (default 1000)");
      ("--concurrency", Arg.Set_int concurrency, "N closed loops for load (default 8)");
      ("--watch", Arg.Set watch, " with stats: keep polling and print diffs");
      ( "--verify",
        Arg.Set verify,
        " with query: demand a locally checked happens-before certificate" );
      ( "--interval",
        Arg.Set_float interval,
        "S polling period for stats --watch (default 1.0)" );
      ( "--shards",
        Arg.Set_int shards,
        "N federation mode: talk to N shard chains through a router" );
      ( "--shard",
        Arg.String
          (fun s ->
            match String.index_opt s '@' with
            | None -> raise (Arg.Bad ("--shard: expected i@ADDR, got " ^ s))
            | Some k -> (
                match
                  ( int_of_string_opt (String.sub s 0 k),
                    int_of_string_opt
                      (String.sub s (k + 1) (String.length s - k - 1)) )
                with
                | Some i, Some a when i >= 0 ->
                  shard_coordinators := (i, a) :: !shard_coordinators
                | _ -> raise (Arg.Bad ("--shard: expected i@ADDR, got " ^ s)))),
        "i@ADDR coordinator address of federation shard i (default 1000+i)" );
      ( "--fed-state",
        Arg.Set_string fed_state,
        "FILE federation cross-edge table carried between invocations \
         (default .kronos-fed.state; \"\" disables)" );
    ]
  in
  Arg.parse spec (fun a -> rest := a :: !rest) usage;
  let cmd = List.rev !rest in
  if !peers = [] then begin
    prerr_endline "kronos_cli: need at least one --peer";
    exit 2
  end;

  let loop = Event_loop.create () in
  let tcp =
    Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
      ~decode:Kronos_replication.Chain_codec.decode ()
  in
  List.iter (fun p -> Tcp.add_peer tcp p.addr ~host:p.host ~port:p.port) !peers;
  let net = Tcp.transport tcp in
  let client =
    Client.create ~net ~addr:!addr ~coordinator:!coordinator ~request_timeout:0.5 ()
  in
  (* Federation mode: one proxy per shard behind a router, claiming the
     address block right above this client's own addresses. *)
  let fed_endpoints =
    if !shards <= 0 then []
    else
      List.init !shards (fun i ->
          let coordinator =
            match List.assoc_opt i !shard_coordinators with
            | Some a -> a
            | None -> 1000 + i
          in
          { Router.shard = i; coordinator })
  in
  let router =
    match fed_endpoints with
    | [] -> None
    | endpoints ->
      Some
        (Router.create ~net ~addr:(!addr + 10) ~shards:endpoints
           ~request_timeout:0.5 ())
  in
  (* One-shot invocations must share the router's cross-edge table (the
     single-router discipline, DESIGN.md §12): load the previous
     invocation's table now, write ours back after anything mutating. *)
  (match router with
   | Some r when !fed_state <> "" && Sys.file_exists !fed_state -> (
     let ic = open_in_bin !fed_state in
     let s = really_input_string ic (in_channel_length ic) in
     close_in ic;
     match Router.restore r s with
     | Ok () -> ()
     | Error m ->
       prerr_endline
         ("kronos_cli: unreadable federation state " ^ !fed_state ^ ": " ^ m);
       exit 2)
   | _ -> ());
  let save_fed_state () =
    match router with
    | Some r when !fed_state <> "" ->
      let tmp = !fed_state ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc (Router.dump r);
      close_out oc;
      Sys.rename tmp !fed_state
    | _ -> ()
  in
  (* Dial every replica now so the tail learns our return route before the
     first request reaches it. *)
  Tcp.connect_peers tcp;

  let fail_timeout () =
    save_fed_state ();
    prerr_endline "kronos_cli: request timed out";
    exit 1
  in
  let fail_error e =
    save_fed_state ();
    Format.eprintf "kronos_cli: %a@." Kronos_service.Error.pp e;
    exit 1
  in
  (* Run the event loop until one asynchronous call completes. *)
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    if not
         (Event_loop.run_until loop
            ~deadline:(Event_loop.now loop +. !timeout +. 2.0)
            (fun () -> !result <> None))
    then fail_timeout ();
    Option.get !result
  in
  (* The client-side order cache counters, printed wherever server-side
     numbers appear so both cache planes (client order cache, server
     traversal memo) can be read side by side. *)
  let print_cache_stats ~prefix =
    match Client.cache_stats client with
    | None -> Printf.printf "%sclient order cache disabled\n" prefix
    | Some s ->
      Printf.printf
        "%sclient.order_cache.size      %d/%d\n\
         %sclient.order_cache.hits      %d\n\
         %sclient.order_cache.misses    %d\n\
         %sclient.order_cache.prefills  %d\n\
         %sclient.order_cache.evictions %d\n\
         %sclient.order_cache.hit_rate  %.1f%%\n"
        prefix s.Order_cache.stat_size s.Order_cache.stat_capacity
        prefix s.Order_cache.stat_hits
        prefix s.Order_cache.stat_misses
        prefix s.Order_cache.stat_prefills
        prefix s.Order_cache.stat_evictions
        prefix (100. *. Order_cache.hit_rate s);
      flush stdout
  in
  let fmt_value v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.9g" v
  in
  let print_samples ?prev samples =
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 samples
    in
    List.iter
      (fun (name, v) ->
        match prev with
        | None -> Printf.printf "%-*s  %s\n" width name (fmt_value v)
        | Some tbl -> (
            match Hashtbl.find_opt tbl name with
            | Some old when old = v -> ()
            | Some old ->
              Printf.printf "%-*s  %s  (%+g)\n" width name (fmt_value v)
                (v -. old)
            | None -> Printf.printf "%-*s  %s  (new)\n" width name (fmt_value v)))
      samples;
    (* derived: share of reachability probes the chain-label index answered
       without a BFS (DESIGN.md §15) *)
    (match
       ( prev,
         List.assoc_opt "kronos_engine_label_hits_total" samples,
         List.assoc_opt "kronos_engine_label_misses_total" samples )
     with
     | None, Some h, Some m when h +. m > 0. ->
       Printf.printf "%-*s  %.1f%%\n" width "kronos_engine_label_hit_rate"
         (100. *. h /. (h +. m))
     | _ -> ());
    flush stdout
  in
  let run_load () =
    let lat = ref [] in
    let completed = ref 0 in
    let failures = ref 0 in
    let per_loop = max 1 (!ops / !concurrency) in
    let live = ref !concurrency in
    let started = Unix.gettimeofday () in
    (* Each closed loop alternates create_event with an assign_order that
       chains the new event after the previous one — the paper's
       "serialization" pattern — measuring each call's latency. *)
    let rec step prev n =
      if n = 0 then decr live
      else begin
        let t0 = Unix.gettimeofday () in
        Client.create_event client ~timeout:!timeout (function
          | Error _ ->
            incr failures;
            step prev (n - 1)
          | Ok e -> (
            lat := (Unix.gettimeofday () -. t0) :: !lat;
            incr completed;
            match prev with
            | None -> step (Some e) (n - 1)
            | Some p ->
              let t1 = Unix.gettimeofday () in
              Client.assign_order client ~timeout:!timeout
                [ Order.must_before p e ]
                (fun r ->
                  (match r with
                   | Ok _ ->
                     lat := (Unix.gettimeofday () -. t1) :: !lat;
                     incr completed
                   | Error _ -> incr failures);
                  step (Some e) (n - 1))))
      end
    in
    for _ = 1 to !concurrency do
      step None per_loop
    done;
    Event_loop.run_forever loop ~stop:(fun () -> !live = 0);
    let elapsed = Unix.gettimeofday () -. started in
    let sorted = Array.of_list !lat in
    Array.sort compare sorted;
    Printf.printf "ops        %d (%d failed)\n" !completed !failures;
    Printf.printf "elapsed    %.3f s\n" elapsed;
    Printf.printf "throughput %.0f op/s\n" (float_of_int !completed /. elapsed);
    Printf.printf "latency    p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      (1e3 *. percentile sorted 0.50)
      (1e3 *. percentile sorted 0.95)
      (1e3 *. percentile sorted 0.99);
    print_cache_stats ~prefix:""
  in
  (* Fetch one replica's process-wide metrics via the Get_stats admin RPC.
     The reply bypasses the proxy (which only understands chain responses),
     so it is received on a dedicated address with a raw handler. *)
  let run_stats target =
    let stats_addr = !addr + 1 in
    let received = ref None in
    Transport.register net stats_addr (fun ~src:_ msg ->
        match (msg : Chain.msg) with
        | Chain.Stats_is { samples } -> received := Some samples
        | _ -> ());
    let request () =
      Transport.send net ~src:stats_addr ~dst:target
        (Chain.Get_stats { client = stats_addr })
    in
    let await_reply () =
      if not
           (Event_loop.run_until loop
              ~deadline:(Event_loop.now loop +. !timeout)
              (fun () -> !received <> None))
      then fail_timeout ();
      let samples = Option.get !received in
      received := None;
      samples
    in
    if not !watch then begin
      print_samples (request (); await_reply ());
      print_cache_stats ~prefix:""
    end
    else begin
      let stop = ref false in
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
      let prev = Hashtbl.create 256 in
      let first = ref true in
      while not !stop do
        let samples = (request (); await_reply ()) in
        if !first then begin
          print_samples samples;
          print_cache_stats ~prefix:""
        end
        else begin
          Printf.printf "--\n";
          print_samples ~prev samples
        end;
        first := false;
        List.iter (fun (n, v) -> Hashtbl.replace prev n v) samples;
        ignore
          (Event_loop.run_until loop
             ~deadline:(Event_loop.now loop +. !interval)
             (fun () -> !stop))
      done
    end
  in
  (* Federated load: the closed loops are dealt round-robin over the
     shards; each loop chains events on its own shard (create, assign
     prev -> e through the router, then query the pair back), so the
     report can break assign/query latency down per shard. *)
  let run_load_fed r =
    let n_shards = Router.shard_count r in
    let assign_lat = Array.make n_shards [] in
    let query_lat = Array.make n_shards [] in
    let completed = ref 0 in
    let failures = ref 0 in
    let per_loop = max 1 (!ops / !concurrency) in
    let live = ref !concurrency in
    let started = Unix.gettimeofday () in
    let shard_of_loop = Array.of_list (Router.shard_ids r) in
    let slot =
      let tbl = Hashtbl.create 8 in
      Array.iteri (fun i s -> Hashtbl.replace tbl s i) shard_of_loop;
      Hashtbl.find tbl
    in
    let rec step shard prev n =
      if n = 0 then decr live
      else
        let c = Option.get (Router.client_of r shard) in
        Client.create_event c ~timeout:!timeout (function
          | Error _ ->
            incr failures;
            step shard prev (n - 1)
          | Ok e -> (
            incr completed;
            let fe = Fid.make ~shard e in
            match prev with
            | None -> step shard (Some fe) (n - 1)
            | Some p ->
              let t1 = Unix.gettimeofday () in
              Router.assign_order r ~timeout:!timeout
                [ Router.must_before p fe ]
                (fun res ->
                  (match res with
                  | Ok _ ->
                    let s = slot shard in
                    assign_lat.(s) <-
                      (Unix.gettimeofday () -. t1) :: assign_lat.(s);
                    incr completed
                  | Error _ -> incr failures);
                  let t2 = Unix.gettimeofday () in
                  Router.query_order r ~timeout:!timeout
                    [ (p, fe) ]
                    (fun res2 ->
                      (match res2 with
                      | Ok _ ->
                        let s = slot shard in
                        query_lat.(s) <-
                          (Unix.gettimeofday () -. t2) :: query_lat.(s);
                        incr completed
                      | Error _ -> incr failures);
                      step shard (Some fe) (n - 1)))))
    in
    for l = 0 to !concurrency - 1 do
      step shard_of_loop.(l mod n_shards) None per_loop
    done;
    Event_loop.run_forever loop ~stop:(fun () -> !live = 0);
    let elapsed = Unix.gettimeofday () -. started in
    Printf.printf "ops        %d (%d failed) over %d shards\n" !completed
      !failures n_shards;
    Printf.printf "elapsed    %.3f s\n" elapsed;
    Printf.printf "throughput %.0f op/s\n" (float_of_int !completed /. elapsed);
    let report what lats =
      Array.iteri
        (fun s l ->
          let sorted = Array.of_list l in
          Array.sort compare sorted;
          Printf.printf
            "shard%d.%s  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  (%d ops)\n"
            shard_of_loop.(s) what
            (1e3 *. percentile sorted 0.50)
            (1e3 *. percentile sorted 0.95)
            (1e3 *. percentile sorted 0.99)
            (Array.length sorted))
        lats
    in
    report "assign" assign_lat;
    report "query " query_lat;
    flush stdout
  in
  (* Federated stats: scatter Get_stats to every shard's coordinator and
     print one merged registry (fed.* aggregates + shardN.* series). *)
  let run_stats_fed r =
    let targets =
      List.map (fun e -> (e.Router.shard, e.Router.coordinator)) fed_endpoints
    in
    let fetch k =
      let result = ref None in
      Router.merged_stats r ~timeout:!timeout ~targets (fun per ->
          result := Some per);
      if not
           (Event_loop.run_until loop
              ~deadline:(Event_loop.now loop +. !timeout +. 2.0)
              (fun () -> !result <> None))
      then fail_timeout ();
      let per = Option.get !result in
      if per = [] then begin
        prerr_endline "kronos_cli: no shard answered Get_stats";
        exit 1
      end;
      if List.length per < List.length targets then
        Printf.eprintf "kronos_cli: only %d/%d shards answered\n%!"
          (List.length per) (List.length targets);
      k (Router.merge_samples per)
    in
    if not !watch then fetch (fun samples -> print_samples samples)
    else begin
      let stop = ref false in
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
      let prev = Hashtbl.create 256 in
      let first = ref true in
      while not !stop do
        fetch (fun samples ->
            if !first then print_samples samples
            else begin
              Printf.printf "--\n";
              print_samples ~prev samples
            end;
            first := false;
            List.iter (fun (n, v) -> Hashtbl.replace prev n v) samples);
        ignore
          (Event_loop.run_until loop
             ~deadline:(Event_loop.now loop +. !interval)
             (fun () -> !stop))
      done
    end
  in
  (* Certificates are per-shard objects (a chain commits only its own
     graph), so verified reads are single-chain mode only for now. *)
  let fail_fed_verify what =
    prerr_endline
      ("kronos_cli: " ^ what
     ^ " is not supported in federation mode (certificates cover one \
        shard's chain; see DESIGN.md §13)");
    exit 2
  in
  let print_cert (c : Kronos_certify.Certificate.t) =
    Printf.printf "source  %s  commit %s\n" (string_of_event c.source)
      (Chain_digest.to_hex c.source_commit);
    Printf.printf "target  %s  commit %s\n" (string_of_event c.target)
      (Chain_digest.to_hex c.target_commit);
    Printf.printf "path    %d edge(s), %d byte(s) encoded\n"
      (Kronos_certify.Certificate.path_length c)
      (String.length (Kronos_certify.Certificate.encode c));
    List.iter
      (fun (pred, event) ->
        Printf.printf "        %s -> %s\n" (string_of_event pred)
          (string_of_event event))
      (List.rev (Kronos_certify.Certificate.path_edges c));
    flush stdout
  in
  let pp_unproved ppf (rel : Order.relation) =
    match rel with
    | Order.Before | Order.After -> Format.fprintf ppf "  (unproved)"
    | Order.Concurrent | Order.Same -> Format.fprintf ppf "  (nothing to prove)"
  in
  let fid_of_string s =
    match Fid.of_string s with
    | Some f -> f
    | None ->
      prerr_endline
        ("kronos_cli: not a federated event id (expected S/ID): " ^ s);
      exit 2
  in
  (match (cmd, router) with
   | [ "create" ], Some r -> (
       match await (fun k -> Router.create_event r ~timeout:!timeout k) with
       | Ok f -> Printf.printf "%s\n" (Fid.to_string f)
       | Error e -> fail_error e)
   | [ "create" ], None -> (
       match await (Client.create_event client ~timeout:!timeout) with
       | Ok e -> Printf.printf "%s\n" (string_of_event e)
       | Error e -> fail_error e)
   | [ "assign"; e1; e2 ], Some r -> (
       let f1 = fid_of_string e1 and f2 = fid_of_string e2 in
       match
         await
           (Router.assign_order r ~timeout:!timeout
              [ Router.must_before f1 f2 ])
       with
       | Ok [ outcome ] ->
         save_fed_state ();
         Format.printf "%a@." Order.pp_outcome outcome
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "assign"; e1; e2 ], None -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match
         await
           (Client.assign_order client ~timeout:!timeout
              [ Order.must_before e1 e2 ])
       with
       | Ok [ outcome ] -> Format.printf "%a@." Order.pp_outcome outcome
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "query"; _; _ ], Some _ when !verify -> fail_fed_verify "query --verify"
   | [ "query"; e1; e2 ], Some r -> (
       let f1 = fid_of_string e1 and f2 = fid_of_string e2 in
       match await (Router.query_order r ~timeout:!timeout [ (f1, f2) ]) with
       | Ok [ rel ] -> Format.printf "%a@." Order.pp_relation rel
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "query"; e1; e2 ], None when !verify -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match
         await (Client.query_verified client ~timeout:!timeout e1 e2)
       with
       | Ok (rel, Some c) ->
         Format.printf "%a  (verified, %d-edge certificate)@."
           Order.pp_relation rel
           (Kronos_certify.Certificate.path_length c)
       | Ok (rel, None) ->
         Format.printf "%a%a@." Order.pp_relation rel pp_unproved rel
       | Error e -> fail_error e)
   | [ "query"; e1; e2 ], None -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match await (Client.query_order_e client ~timeout:!timeout [ (e1, e2) ]) with
       | Ok ([ rel ], epoch) ->
         Format.printf "%a  (epoch %Ld)@." Order.pp_relation rel epoch
       | Ok _ -> assert false
       | Error e -> fail_error e)
   | [ "proof"; _; _ ], Some _ -> fail_fed_verify "proof"
   | [ "proof"; e1; e2 ], None -> (
       let e1 = event_of_string e1 and e2 = event_of_string e2 in
       match
         await (Client.query_verified client ~timeout:!timeout e1 e2)
       with
       | Ok (rel, Some c) ->
         Format.printf "%a@." Order.pp_relation rel;
         print_cert c
       | Ok (rel, None) ->
         Format.printf "%a%a@." Order.pp_relation rel pp_unproved rel
       | Error e -> fail_error e)
   | [ "release"; e ], Some r -> (
       match
         await (Router.release_ref r ~timeout:!timeout (fid_of_string e))
       with
       | Ok n ->
         save_fed_state ();
         Printf.printf "collected %d\n" n
       | Error e -> fail_error e)
   | [ "release"; e ], None -> (
       match await (Client.release_ref client ~timeout:!timeout (event_of_string e)) with
       | Ok n -> Printf.printf "collected %d\n" n
       | Error e -> fail_error e)
   | [ "load" ], Some r ->
     run_load_fed r;
     save_fed_state ()
   | [ "load" ], None -> run_load ()
   | [ "stats" ], Some r -> run_stats_fed r
   | [ "stats" ], None -> run_stats (List.hd (List.rev !peers)).addr
   | [ "stats"; target ], _ -> (
       match int_of_string_opt target with
       | Some a -> run_stats a
       | None ->
         prerr_endline ("kronos_cli: stats: not an address: " ^ target);
         exit 2)
   | _ ->
     prerr_endline usage;
     exit 2);
  Tcp.shutdown tcp
