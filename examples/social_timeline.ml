(* The social-network timeline of Section 3.1 (Figure 5 of the paper):
   posts get Kronos events, replies are must-ordered after the message they
   answer, and rendering topologically sorts each user's inbox so a reply
   never appears above the message it replies to — without imposing a total
   order on unrelated posts.

   Run with: dune exec examples/social_timeline.exe *)

open Kronos

type message = {
  id : int;
  author : string;
  text : string;
  event : Event_id.t;
}

type network = {
  engine : Engine.t;
  mutable next_id : int;
  timelines : (string, message list) Hashtbl.t;  (* newest first *)
  friends : (string, string list) Hashtbl.t;
}

let create_network friendships =
  let friends = Hashtbl.create 8 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace friends a (b :: Option.value ~default:[] (Hashtbl.find_opt friends a));
      Hashtbl.replace friends b (a :: Option.value ~default:[] (Hashtbl.find_opt friends b)))
    friendships;
  { engine = Engine.create (); next_id = 0; timelines = Hashtbl.create 8; friends }

let friends_of net user = Option.value ~default:[] (Hashtbl.find_opt net.friends user)

let enqueue net ~timeline message =
  Hashtbl.replace net.timelines timeline
    (message :: Option.value ~default:[] (Hashtbl.find_opt net.timelines timeline))

(* post_message from Figure 5 *)
let post_message net ~author ~text =
  let event = Engine.create_event net.engine in
  net.next_id <- net.next_id + 1;
  let message = { id = net.next_id; author; text; event } in
  List.iter (fun friend -> enqueue net ~timeline:friend message)
    (author :: friends_of net author);
  message

(* reply_to_message from Figure 5: one extra must edge *)
let reply_to_message net ~author ~text ~in_reply_to =
  let message = post_message net ~author ~text in
  (match
     Engine.assign_order net.engine
       [ Order.must_before in_reply_to.event message.event ]
   with
   | Ok _ -> ()
   | Error e ->
     Format.printf "could not order reply: %a@." Order.pp_assign_error e);
  message

(* render_timeline from Figure 5: query all pairs, then topologically sort
   respecting the partial order; unordered messages keep arrival order *)
let render_timeline net ~user =
  let messages =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt net.timelines user))
  in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a.id < b.id then Some (a, b) else None)
          messages)
      messages
  in
  let orderings =
    match
      Engine.query_order net.engine
        (List.map (fun (a, b) -> (a.event, b.event)) pairs)
    with
    | Ok rels -> List.combine pairs rels
    | Error _ -> []
  in
  (* must_precede a b: Kronos committed a before b *)
  let must_precede a b =
    List.exists
      (fun ((x, y), rel) ->
        match (rel : Order.relation) with
        | Order.Before -> x.id = a.id && y.id = b.id
        | Order.After -> y.id = a.id && x.id = b.id
        | Order.Concurrent | Order.Same -> false)
      orderings
  in
  (* stable topological sort: repeatedly take the earliest-arrived message
     with no unprinted predecessor *)
  let rec sort remaining acc =
    match
      List.find_opt
        (fun m -> not (List.exists (fun p -> p.id <> m.id && must_precede p m) remaining))
        remaining
    with
    | None -> List.rev acc @ remaining  (* cycle impossible; safety net *)
    | Some m -> sort (List.filter (fun x -> x.id <> m.id) remaining) (m :: acc)
  in
  sort messages []

let print_timeline net user =
  Format.printf "@.-- %s's timeline --@." user;
  List.iter
    (fun m -> Format.printf "  [%d] %s: %s@." m.id m.author m.text)
    (render_timeline net ~user)

let () =
  Format.printf "== social timeline (Figure 5) ==@.";
  let net = create_network [ ("alice", "bob"); ("alice", "carol"); ("bob", "carol") ] in
  let brunch = post_message net ~author:"alice" ~text:"Brunch anyone?" in
  let hike = post_message net ~author:"carol" ~text:"Going hiking today." in
  (* bob's reply reaches timelines "later" but must render under brunch *)
  let reply = reply_to_message net ~author:"bob" ~text:"Brunch: count me in!" ~in_reply_to:brunch in
  let nested =
    reply_to_message net ~author:"alice" ~text:"Great, 11am at Joe's." ~in_reply_to:reply
  in
  ignore nested;
  ignore hike;
  print_timeline net "alice";
  print_timeline net "carol";
  (* demonstrate that the conversation order is pinned while unrelated posts
     stay concurrent *)
  (match Engine.query_order net.engine [ (brunch.event, reply.event);
                                         (brunch.event, hike.event) ] with
   | Ok [ conversation; unrelated ] ->
     Format.printf "@.brunch vs its reply: %a (pinned)@." Order.pp_relation conversation;
     Format.printf "brunch vs hike: %a (free for the UI to arrange)@."
       Order.pp_relation unrelated
   | Ok _ | Error _ -> assert false)
