(* Quickstart: the whole Kronos API (Table 1 of the paper) in one minute.

   Run with: dune exec examples/quickstart.exe *)

open Kronos

let show_relation engine label (e1, e2) =
  match Engine.query_order engine [ (e1, e2) ] with
  | Ok [ relation ] ->
    Format.printf "  %s: %a@." label Order.pp_relation relation
  | Ok _ | Error _ -> assert false

let () =
  Format.printf "== Kronos quickstart ==@.";
  let engine = Engine.create () in

  (* 1. create events — opaque handles for "things that happened" *)
  let alice_uploads = Engine.create_event engine in
  let alice_tags_bob = Engine.create_event engine in
  let bob_likes = Engine.create_event engine in
  let unrelated = Engine.create_event engine in
  Format.printf "created 4 events@.";

  (* 2. everything starts out concurrent *)
  show_relation engine "upload vs like (before ordering)" (alice_uploads, bob_likes);

  (* 3. record happens-before relationships; the batch is atomic *)
  (match
     Engine.assign_order engine
       [ Order.must_before alice_uploads alice_tags_bob;
         Order.must_before alice_tags_bob bob_likes ]
   with
   | Ok outcomes ->
     Format.printf "assign_order: %a@."
       (Format.pp_print_list ~pp_sep:Format.pp_print_space Order.pp_outcome)
       outcomes
   | Error e -> Format.printf "assign_order failed: %a@." Order.pp_assign_error e);

  (* 4. queries now see the transitive order *)
  show_relation engine "upload vs like" (alice_uploads, bob_likes);
  show_relation engine "like vs upload" (bob_likes, alice_uploads);
  show_relation engine "upload vs unrelated" (alice_uploads, unrelated);

  (* 5. contradicting an established order aborts the whole batch *)
  (match
     Engine.assign_order engine
       [ Order.must_before bob_likes alice_uploads ]
   with
   | Ok _ -> assert false
   | Error e ->
     Format.printf "contradiction rejected: %a@." Order.pp_assign_error e);

  (* 6. prefer constraints reverse gracefully instead of aborting *)
  (match
     Engine.assign_order engine
       [ Order.prefer_before bob_likes alice_uploads ]
   with
   | Ok [ outcome ] ->
     Format.printf "prefer against the flow: %a@." Order.pp_outcome outcome
   | Ok _ | Error _ -> assert false);

  (* 7. reference counting drives garbage collection *)
  (match Engine.release_ref engine unrelated with
   | Ok collected -> Format.printf "released unrelated: %d collected@." collected
   | Error _ -> assert false);
  List.iter
    (fun e -> ignore (Engine.release_ref engine e))
    [ bob_likes; alice_tags_bob ];
  Format.printf "live events after releasing two referenced ones: %d@."
    (Engine.live_events engine);
  (match Engine.release_ref engine alice_uploads with
   | Ok collected ->
     Format.printf "releasing the root collected the chain: %d events@." collected
   | Error _ -> assert false);
  Format.printf "live events at exit: %d@." (Engine.live_events engine);
  Format.printf "engine stats: %a@." Engine.pp_stats (Engine.stats engine)
