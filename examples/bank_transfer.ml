(* The Section 3.3 transactional key-value store, end to end: a sharded
   store, a replicated Kronos service, and concurrent clients moving money
   with full serializability — then the same workload run without
   coordination ("put-and-pray") to show why ordering matters.

   Run with: dune exec examples/bank_transfer.exe *)

open Kronos_simnet
open Kronos_kvstore
open Kronos_txn
module Bank = Kronos_workload.Bank

let accounts = 10
let balance = 1_000
let transfers = 200
let clients = 8

let run_mode ~mode ~label =
  let sim = Sim.create ~seed:42L () in
  let kv_net = Net.create sim in
  let shard_addrs = Array.init 4 (fun i -> i) in
  let shards = Array.map (fun a -> Shard.create ~net:kv_net ~addr:a ()) shard_addrs in
  (* a 3-replica Kronos deployment on its own network *)
  let chain_net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  ignore
    (Kronos_service.Server.deploy ~net:chain_net ~coordinator:1000
       ~replicas:[ 0; 1; 2 ] ());
  (* seed the accounts *)
  let seeder = Kv_client.create ~net:kv_net ~addr:900 in
  for i = 0 to accounts - 1 do
    let key = Bank.account_key i in
    Kv_client.request seeder
      ~shard:shard_addrs.(Router.shard_of ~shards:4 key)
      (Kv_msg.Put { key; value = string_of_int balance })
      (fun _ -> ())
  done;
  Sim.run ~until:1.0 sim;
  (* concurrent closed-loop clients *)
  let ids = Executor.id_source () in
  let bank = Bank.create ~rng:(Rng.split (Sim.rng sim)) ~accounts ~skew:0.9 () in
  let executors =
    Array.init clients (fun i ->
        let kv = Kv_client.create ~net:kv_net ~addr:(100 + i) in
        let kronos =
          match mode with
          | Executor.Kronos_ordered ->
            Some
              (Kronos_service.Client.create ~net:chain_net ~addr:(5000 + i)
                 ~coordinator:1000 ())
          | Executor.Put_and_pray | Executor.Locking -> None
        in
        Executor.create ~mode ~sim ~kv ~shards:shard_addrs ~ids ?kronos ())
  in
  let issued = ref 0 and completed = ref 0 in
  let started_at = Sim.now sim in
  let finished_at = ref started_at in
  let rec loop exec =
    if !issued < transfers then begin
      incr issued;
      Executor.transfer exec (Bank.next_transfer bank) (fun _ ->
          incr completed;
          finished_at := Sim.now sim;
          loop exec)
    end
  in
  Array.iter loop executors;
  Sim.run ~until:(started_at +. 300.0) sim;
  let elapsed = !finished_at -. started_at in
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    Array.iter
      (fun shard ->
        match Shard.peek shard (Bank.account_key i) with
        | Some v -> total := !total + int_of_string v
        | None -> ())
      shards
  done;
  let retries = Array.fold_left (fun acc e -> acc + Executor.retries e) 0 executors in
  Format.printf
    "%-14s %d/%d transfers, %.1f tx/s (virtual), money: %d/%d %s, retries: %d@."
    label !completed transfers
    (float_of_int !completed /. elapsed)
    !total (accounts * balance)
    (if !total = accounts * balance then "(conserved ✓)" else "(LOST ✗)")
    retries

let () =
  Format.printf "== transactional bank (Section 3.3 / Figure 7) ==@.";
  Format.printf "%d accounts, %d transfers, %d concurrent clients@.@."
    accounts transfers clients;
  run_mode ~mode:Executor.Put_and_pray ~label:"put-and-pray";
  run_mode ~mode:Executor.Locking ~label:"locking";
  run_mode ~mode:Executor.Kronos_ordered ~label:"kronos"
