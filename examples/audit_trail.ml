(* Tamper-evident audit trail (DESIGN.md §13): an append-only log of
   audit records ordered by Kronos, read back through happens-before
   certificates, with the auditor pinning every commitment it sees.

   The demo runs the same queries against two replicas:

   - the honest one, whose log only ever grows.  Append-only growth never
     changes a committed event's chain (new records take *in*-edges from
     old ones, old records take none), so the auditor's pins stay valid
     across sessions;
   - a byzantine one that rewrote history to hide that a withdrawal was
     approved first.  Its rewritten chains are internally consistent — the
     certificate it produces passes {!Kronos_certify.Verifier.verify} on
     its own! — but it cannot present the commitments it showed before the
     rewrite without a hash collision, and the auditor's pin catches it.

   Run with: dune exec examples/audit_trail.exe *)

open Kronos
module Prover = Kronos_certify.Prover
module Verifier = Kronos_certify.Verifier
module Audit = Kronos_certify.Audit

type record_ = { label : string; event : Event_id.t }

(* Append a record ordered after [after] — the only mutation an audit log
   allows. *)
let append engine ~after label =
  let event = Engine.create_event engine in
  List.iter
    (fun prev ->
      match
        Engine.assign_order engine [ Order.must_before prev.event event ]
      with
      | Ok _ -> ()
      | Error e -> Format.kasprintf failwith "append: %a" Order.pp_assign_error e)
    after;
  { label; event }

(* One auditor session: fetch a certificate for [source ⇝ target] from
   [engine] (standing in for the replica's server side) and run it through
   the audit log, which verifies it and pins both endpoint commitments. *)
let audited_read audit engine ~replica (source : record_) (target : record_) =
  Format.printf "@.auditor asks %s: did %S happen before %S?@." replica
    source.label target.label;
  match Prover.prove (Engine.current_view engine) ~source:source.event ~target:target.event with
  | None -> Format.printf "  no certificate (unordered or unprovable)@."
  | Some cert ->
    Format.printf "  certificate: %d edge(s), standalone verify: %s@."
      (Kronos_certify.Certificate.path_length cert)
      (match Verifier.verify cert with Ok () -> "ok" | Error m -> m);
    (match Audit.check audit cert with
     | Ok () -> Format.printf "  audit: accepted, commitments pinned@."
     | Error (`Invalid m) -> Format.printf "  audit: REJECTED (%s)@." m
     | Error (`Conflict c) ->
       Format.printf "  audit: TAMPER EVIDENCE — %a@." Audit.pp_conflict c)

let () =
  Format.printf "== tamper-evident audit trail ==@.";
  (* the honest replica's log: open -> approve -> withdraw -> close *)
  let honest = Engine.create () in
  let opened = append honest ~after:[] "account opened" in
  let approved = append honest ~after:[ opened ] "manager approval" in
  let withdrawn = append honest ~after:[ approved ] "large withdrawal" in
  let audit = Audit.create () in
  audited_read audit honest ~replica:"honest replica" approved withdrawn;

  (* the log keeps growing append-only; earlier pins stay valid *)
  let closed = append honest ~after:[ withdrawn ] "account closed" in
  audited_read audit honest ~replica:"honest replica" opened closed;
  Format.printf "@.pinned commitments: %d, conflicts: %d@." (Audit.pin_count audit)
    (Audit.conflict_count audit);

  (* A byzantine replica rewrites history: same events (same ids, minted in
     the same order), but the withdrawal is re-ordered directly after the
     account was opened — the approval edge is gone, as if the withdrawal
     never waited for it. *)
  let byzantine = Engine.create () in
  let opened' = append byzantine ~after:[] "account opened" in
  let approved' = append byzantine ~after:[ opened' ] "manager approval" in
  ignore approved';
  let withdrawn' = append byzantine ~after:[ opened' ] "large withdrawal" in
  let closed' = append byzantine ~after:[ withdrawn' ] "account closed" in
  ignore closed';
  audited_read audit byzantine ~replica:"byzantine replica" opened' withdrawn';
  Format.printf "@.pinned commitments: %d, conflicts: %d@." (Audit.pin_count audit)
    (Audit.conflict_count audit);
  if Audit.conflict_count audit > 0 then
    Format.printf
      "the rewrite was detected: the replica presented a different@.\
       commitment for an event the auditor had already pinned.@."
