(* KronoGraph (Section 3.2): a sharded, strongly consistent graph store in
   which isolation comes from Kronos's late time binding instead of locks.
   Builds a small social graph, asks for friend recommendations while the
   graph mutates, and shows the atomic-update guarantee from the paper's
   A−B / B−C example.

   Run with: dune exec examples/graph_traversal.exe *)

open Kronos_simnet
open Kronos_graphstore

let () =
  Format.printf "== KronoGraph (Section 3.2) ==@.";
  let sim = Sim.create ~seed:7L () in
  (* replicated Kronos service *)
  let chain_net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  ignore
    (Kronos_service.Server.deploy ~net:chain_net ~coordinator:1000
       ~replicas:[ 0; 1; 2 ] ());
  (* four graph shards, each with its own Kronos client *)
  let gnet = Net.create sim in
  let shard_addrs = Array.init 4 (fun i -> i) in
  let shards =
    Array.map
      (fun a ->
        let kronos =
          Kronos_service.Client.create ~net:chain_net ~addr:(3000 + a)
            ~coordinator:1000 ()
        in
        Kshard.create ~net:gnet ~addr:a ~kronos ())
      shard_addrs
  in
  let kronos =
    Kronos_service.Client.create ~net:chain_net ~addr:4000 ~coordinator:1000 ()
  in
  let g = Kgraph.create ~net:gnet ~addr:5000 ~kronos ~shards:shard_addrs () in
  let await f =
    let r = ref None in
    f (fun x -> r := Some x);
    while !r = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    Option.get !r
  in

  (* build: 1 knows 2,3; both know 4; 2 knows 5 *)
  List.iter
    (fun (u, v) -> await (fun k -> Kgraph.add_friendship g u v (fun () -> k ())))
    [ (1, 2); (1, 3); (2, 4); (3, 4); (2, 5) ];
  Format.printf "graph built; neighbors of 1: %s@."
    (String.concat ", " (List.map string_of_int (await (fun k -> Kgraph.neighbors g 1 k))));
  (match await (fun k -> Kgraph.recommend g 1 k) with
   | Some w -> Format.printf "friend recommendation for 1: %d (most mutual friends)@." w
   | None -> Format.printf "no recommendation@.");

  (* the paper's atomicity example: remove A-B and add B-C as ONE event;
     a concurrent traversal never observes the half-applied state *)
  Format.printf "@.-- atomic edge switch under concurrent queries --@.";
  let a = 10 and b = 11 and c = 12 in
  await (fun k -> Kgraph.add_friendship g a b (fun () -> k ()));
  let violations = ref 0 in
  let queries = ref 0 in
  let rec flip to_c n =
    if n > 0 then
      Kgraph.batch_update g
        (if to_c then
           [ (a, G_msg.Remove_edge b); (b, G_msg.Remove_edge a);
             (b, G_msg.Add_edge c); (c, G_msg.Add_edge b) ]
         else
           [ (b, G_msg.Remove_edge c); (c, G_msg.Remove_edge b);
             (a, G_msg.Add_edge b); (b, G_msg.Add_edge a) ])
        (fun () -> flip (not to_c) (n - 1))
  in
  let rec probe n =
    if n > 0 then
      Kgraph.recommend g a (fun r ->
          incr queries;
          if r = Some c then incr violations;
          probe (n - 1))
  in
  flip true 20;
  probe 40;
  (* bounded: the replicated service pings forever, so don't drain the sim *)
  Sim.run ~until:(Sim.now sim +. 300.0) sim;
  Format.printf "ran %d concurrent traversals during 20 atomic flips@." !queries;
  Format.printf "traversals that saw C reachable from A (must be 0): %d@." !violations;

  let fast = Array.fold_left (fun acc s -> acc + Kshard.fast_path_ops s) 0 shards in
  let batches = Array.fold_left (fun acc s -> acc + Kshard.kronos_batches s) 0 shards in
  let ops = Array.fold_left (fun acc s -> acc + Kshard.operations s) 0 shards in
  Format.printf "@.shard ops: %d, kronos batches: %d, cache fast-path: %d@."
    ops batches fast
