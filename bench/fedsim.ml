(* fedsim: a scripted, fully deterministic federation run on the simulated
   network, printed as a trace on stdout.

   CI runs this twice with the same seed and fails if the two outputs are
   not bit-identical — the determinism gate for the federation subsystem
   (DESIGN §12): given a seed, message timing, two-shard commits,
   rollbacks, reflections and the final ordering matrix must replay
   exactly.  The script deliberately includes a replica crash and a
   network partition mid-workload so the recovery paths are part of the
   gated trace.

   Override the seed with KRONOS_FEDSIM_SEED. *)

open Kronos
module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net
module Fed = Kronos_federation.Deploy
module Router = Kronos_federation.Router
module Fid = Kronos_federation.Fid
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Error = Kronos_service.Error

let run () =
  let seed =
    match Sys.getenv_opt "KRONOS_FEDSIM_SEED" with
    | Some s -> Int64.of_string s
    | None -> 42L
  in
  let sim = Sim.create ~seed () in
  let raw = Net.create sim in
  let net = Kronos_transport.Sim_transport.of_net raw in
  let fed =
    Fed.deploy ~net ~shards:[ 0; 1 ] ~replicas_per_shard:3
      ~request_timeout:0.4 ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  let rt = fed.Fed.router in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    let deadline = Sim.now sim +. 60.0 in
    while !result = None && Sim.now sim < deadline && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some x -> x
    | None ->
      Printf.printf "fedsim: wedged at %.6f\n" (Sim.now sim);
      exit 1
  in
  let emit fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "%10.6f %s\n" (Sim.now sim) s)
      fmt
  in
  Printf.printf "fedsim seed=%Ld shards=2 replicas=3\n" seed;
  let per_shard = 10 in
  let mint shard =
    let c = Option.get (Router.client_of rt shard) in
    match await (Client.create_event c) with
    | Ok id -> Fid.make ~shard id
    | Error e ->
      Printf.printf "fedsim: mint failed: %s\n" (Error.to_string e);
      exit 1
  in
  let ev = Array.init 2 (fun s -> Array.init per_shard (fun _ -> mint s)) in
  let ops =
    List.init 30 (fun i ->
        match i mod 3 with
        | 0 -> (ev.(0).(i / 3 mod per_shard), ev.(1).(7 * i / 3 mod per_shard))
        | 1 ->
          (ev.(1).(((5 * i) + 1) mod per_shard), ev.(0).(((11 * i) + 2) mod per_shard))
        | _ ->
          let s = i / 3 mod 2 in
          (ev.(s).((3 * i) mod per_shard), ev.(s).(((3 * i) + 4) mod per_shard)))
  in
  let everyone_else =
    [ 100; 101; 102; 200; 202; 1000; 1001; 2000; 2001; 2002 ]
  in
  List.iteri
    (fun i (x, y) ->
      (match i with
      | 8 ->
        emit "nemesis: crash replica 101 (shard 0)";
        Server.crash (Option.get (Fed.cluster_of fed 0)) 101
      | 14 ->
        emit "nemesis: partition replica 201 (shard 1)";
        Net.partition raw [ 201 ] everyone_else
      | 20 ->
        emit "nemesis: heal";
        Net.heal raw
      | _ -> ());
      match
        await (Router.assign_order rt ~timeout:3.0 [ Router.must_before x y ])
      with
      | Ok [ o ] ->
        emit "op %02d %s->%s: %s" i (Fid.to_string x) (Fid.to_string y)
          (Format.asprintf "%a" Order.pp_outcome o)
      | Ok _ ->
        emit "op %02d %s->%s: unexpected batch shape" i (Fid.to_string x)
          (Fid.to_string y)
      | Error e ->
        emit "op %02d %s->%s: error %s" i (Fid.to_string x) (Fid.to_string y)
          (Error.to_string e))
    ops;
  Sim.run ~until:(Sim.now sim +. 5.0) sim;
  (* final ordering matrix over every cross-shard pair *)
  let pairs = ref [] in
  for u = 0 to per_shard - 1 do
    for v = 0 to per_shard - 1 do
      pairs := (ev.(0).(u), ev.(1).(v)) :: !pairs
    done
  done;
  let pairs = List.rev !pairs in
  (match await (Router.query_order rt ~timeout:10.0 pairs) with
  | Ok rels ->
    List.iter2
      (fun (x, y) r ->
        emit "rel %s %s %s" (Fid.to_string x) (Fid.to_string y)
          (Format.asprintf "%a" Order.pp_relation r))
      pairs rels
  | Error e -> emit "final query failed: %s" (Error.to_string e));
  List.iter
    (fun (s, n) -> emit "frontier shard%d egress=%d" s n)
    (Router.frontier rt);
  emit "cross_edges=%d internal=%d inconsistencies=%d" (Router.cross_edges rt)
    (Router.internal_edges rt)
    (Router.inconsistencies rt)
