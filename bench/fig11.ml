(* Figure 11: strict garbage collection time vs number of events collected.

   Worst case from the paper: fixed-length happens-before chains where
   releasing the first event's reference collects the whole chain.  Time
   must grow linearly in the events collected (<= ~30 ms at 256 k). *)

open Kronos

let build_chain engine n =
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  for i = 0 to n - 2 do
    match
      Engine.assign_order engine
        [ Order.must_before ids.(i) ids.(i + 1) ]
    with
    | Ok _ -> ()
    | Error _ -> assert false
  done;
  (* drop every reference except the head: the chain is now pinned purely by
     the happens-before edges *)
  for i = 1 to n - 1 do
    ignore (Engine.release_ref engine ids.(i))
  done;
  ids.(0)

let run () =
  Bench_util.section "Figure 11: garbage collection time vs collected events";
  Bench_util.paper "linear; ~30 ms to collect 262,144 chained events";
  Printf.printf "  %12s %12s %16s\n%!" "collected" "time" "ns/event";
  let sizes =
    if !Bench_util.full_scale then [ 16_384; 32_768; 65_536; 131_072; 262_144 ]
    else [ 8_192; 16_384; 32_768; 65_536; 131_072; 262_144 ]
  in
  List.iter
    (fun n ->
      (* best of three runs: a major GC landing inside one measurement would
         otherwise distort the trend *)
      let best = ref infinity in
      for _ = 1 to 3 do
        let engine = Engine.create () in
        let head = build_chain engine n in
        Gc.minor ();
        let collected, dt =
          Bench_util.time_s (fun () ->
              match Engine.release_ref engine head with
              | Ok collected -> collected
              | Error _ -> assert false)
        in
        assert (collected = n);
        if dt < !best then best := dt
      done;
      let dt = !best in
      Printf.printf "  %12d %9.3f ms %16.1f\n%!" n (dt *. 1e3)
        (dt *. 1e9 /. float_of_int n))
    sizes;
  Bench_util.ours "time per collected event is flat => linear total, as in the paper"
