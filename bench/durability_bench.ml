(* Durability microbenchmarks (not a paper figure — the paper's prototype
   keeps state in memory only; this grounds the cost of adding persistence).

   Three questions:
   - WAL append throughput: records/s through the group-commit path, for the
     in-memory backend (pure framing + CRC cost) and real files, across the
     fsync policies (the classic durability/latency trade);
   - snapshot cost: encode + write time and snapshot size as the DAG grows;
   - recovery time: restoring an engine from snapshot + WAL suffix vs the
     size of the DAG underneath. *)

open Kronos
open Kronos_simnet
module Storage = Kronos_durability.Storage
module Wal = Kronos_durability.Wal
module Snapshot = Kronos_durability.Snapshot
module Recovery = Kronos_durability.Recovery
module Graph_gen = Kronos_workload.Graph_gen
module Message = Kronos_wire.Message

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kronos-bench-%d" (Unix.getpid ()))
  in
  let rec clean path =
    if Sys.file_exists path then begin
      if Sys.is_directory path then begin
        Array.iter (fun n -> clean (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
    end
  in
  clean dir;
  Fun.protect ~finally:(fun () -> clean dir) (fun () -> f dir)

let policy_name = function
  | Wal.Always -> "always"
  | Wal.Every_n n -> Printf.sprintf "every %d" n
  | Wal.Never -> "never"

(* One flush per [batch] appends: the group-commit shape the chain produces
   when [batch] commands arrive in one delivered message. *)
let wal_append_throughput storage ~records ~batch ~sync =
  let config = { Wal.segment_bytes = 4 * 1024 * 1024; sync } in
  let wal, _ = Wal.open_ ~config storage in
  let payload = String.make 64 'k' in
  let _, elapsed =
    Bench_util.time_s (fun () ->
        for seq = 1 to records do
          Wal.append wal ~seq ~payload;
          if seq mod batch = 0 then Wal.flush wal
        done;
        Wal.sync wal)
  in
  (float_of_int records /. elapsed, Wal.sync_count wal)

(* Engine pre-loaded with an Erdős–Rényi DAG of [n] vertices, [2n] edges. *)
let loaded_engine ~n =
  let rng = Rng.create ~seed:42L in
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m:(2 * n) in
  let engine = Engine.create () in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  Array.iter
    (fun (u, v) ->
      let u, v = (min u v, max u v) in
      ignore
        (Engine.assign_order engine
           [ Order.must_before ids.(u) ids.(v) ]))
    g.Graph_gen.edges;
  (engine, ids)

let run () =
  Bench_util.section "Durability: WAL throughput, snapshot cost, recovery time";
  Bench_util.note
    "  (no paper counterpart: the paper's prototype is memory-only)";

  (* --- WAL append throughput -------------------------------------- *)
  let records = Bench_util.scaled 20_000 200_000 in
  let batches = [ 1; 16 ] in
  let policies = [ Wal.Always; Wal.Every_n 64; Wal.Never ] in
  Printf.printf "\n  WAL append throughput (%d records, 64 B payloads)\n" records;
  Printf.printf "  %8s %10s %6s %16s %8s\n%!" "backend" "sync" "batch"
    "throughput" "fsyncs";
  List.iter
    (fun sync ->
      List.iter
        (fun batch ->
          let mem_tput, mem_syncs =
            wal_append_throughput
              (Storage.Memory.storage (Storage.Memory.create ()))
              ~records ~batch ~sync
          in
          Printf.printf "  %8s %10s %6d %16s %8d\n%!" "memory"
            (policy_name sync) batch
            (Bench_util.pp_ops mem_tput)
            mem_syncs;
          with_tmp_dir (fun dir ->
              let file_tput, file_syncs =
                wal_append_throughput (Storage.files ~dir) ~records ~batch ~sync
              in
              Printf.printf "  %8s %10s %6d %16s %8d\n%!" "file"
                (policy_name sync) batch
                (Bench_util.pp_ops file_tput)
                file_syncs))
        batches)
    policies;
  Bench_util.ours
    "group commit and relaxed fsync each buy orders of magnitude on real files";

  (* --- snapshot + recovery vs DAG size ----------------------------- *)
  let sizes =
    if !Bench_util.full_scale then [ 1_000; 10_000; 100_000 ]
    else [ 1_000; 10_000 ]
  in
  Printf.printf "\n  Snapshot and recovery vs DAG size (n vertices, 2n edges)\n";
  Printf.printf "  %10s %12s %12s %12s %14s\n%!" "vertices" "snap bytes"
    "snap write" "recovery" "+1k wal recs";
  List.iter
    (fun n ->
      let engine, ids = loaded_engine ~n in
      let dir = Storage.Memory.create () in
      let storage = Storage.Memory.storage dir in
      let encoded = Snapshot.encode ~seq:1 (Engine.to_snapshot engine) in
      let _, write_s =
        Bench_util.time_s (fun () ->
            Snapshot.write storage ~seq:1 engine)
      in
      (* recovery from the snapshot alone *)
      let _, recover_s =
        Bench_util.time_s (fun () ->
            ignore
              (Recovery.run ~replay:(fun _ _ -> ()) storage))
      in
      (* recovery with a 1000-record WAL suffix of real commands on top *)
      let wal, _ = Wal.open_ storage in
      let replayable = 1_000 in
      for i = 1 to replayable do
        let u = ids.(i mod n) and v = ids.((i * 7 + 1) mod n) in
        Wal.append wal ~seq:(i + 1)
          ~payload:(Message.encode_request (Message.Query_order [ (u, v) ]))
      done;
      Wal.sync wal;
      let _, recover_wal_s =
        Bench_util.time_s (fun () ->
            ignore
              (Recovery.run
                 ~replay:(fun e (r : Wal.record) ->
                   ignore (Kronos_service.Server.apply e r.payload))
                 storage))
      in
      Printf.printf "  %10d %12d %12s %12s %14s\n%!" n (String.length encoded)
        (Bench_util.pp_ns (write_s *. 1e9))
        (Bench_util.pp_ns (recover_s *. 1e9))
        (Bench_util.pp_ns (recover_wal_s *. 1e9)))
    sizes;
  Bench_util.ours
    "recovery is snapshot-decode bound; WAL replay adds linear command cost"
