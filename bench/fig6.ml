(* Figure 6: KronoGraph vs the lock-based graph store (Titan stand-in).

   Friend-recommendation workload, 95 % reads / 5 % writes, 32 concurrent
   clients, on three graphs: a Twitter-like heavy-tailed graph (the paper's
   ego-Twitter subset: avg degree ~21.7), a dense ER graph (avg degree 100)
   and a sparse ER graph (avg degree 10).  Paper speedups: 59x / 8.3x /
   1.4x.

   Both stores run on the same 16 capacity-modelled shards.  The lock-based
   store pays one lock round trip (and one shard CPU slot) per vertex whose
   adjacency a query reads, and blocks writers meanwhile; KronoGraph issues
   one batched, cache-assisted ordering call per shard touched. *)

open Kronos_simnet
open Kronos_graphstore
module Graph_gen = Kronos_workload.Graph_gen

let shard_count = 16
let clients = 32

(* per-request CPU model shared by both stores *)
let request_cost (r : G_msg.request) =
  let base = 15e-6 and per_vertex = 2e-6 in
  match r with
  | G_msg.K_update _ | G_msg.L_update _ -> base
  | G_msg.K_neighbors { vertices; _ } | G_msg.L_neighbors { vertices } ->
    base +. (per_vertex *. float_of_int (List.length vertices))
  | G_msg.L_lock _ | G_msg.L_unlock_all _ -> base

type load = { name : string; graph : Graph_gen.t; paper_speedup : float }

let run_kronograph ?(shard_cache_capacity = 65536) ~seed ~graph ~ops () =
  let sim = Sim.create ~seed () in
  let chain_net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  (* single Kronos instance, as in the paper's application benchmarks *)
  let cluster =
    Kronos_service.Server.deploy ~net:chain_net ~coordinator:1000
      ~replicas:[ 0 ] ~service:(`Fixed 5e-6) ()
  in
  let gnet = Net.create sim in
  let shard_addrs = Array.init shard_count (fun i -> i) in
  let shards =
    Array.map
      (fun a ->
        let kronos =
          Kronos_service.Client.create ~net:chain_net ~addr:(3000 + a)
            ~coordinator:1000 ~request_timeout:5.0
            ~cache_capacity:(max 1 shard_cache_capacity) ()
        in
        Kshard.create ~net:gnet ~addr:a ~kronos ~cost:request_cost ())
      shard_addrs
  in
  (* preload adjacency directly under a single genesis event *)
  let genesis_client =
    Kronos_service.Client.create ~net:chain_net ~addr:4999 ~coordinator:1000 ()
  in
  let genesis = ref None in
  Kronos_service.Client.create_event genesis_client (fun e ->
      genesis := Some (Result.get_ok e));
  Sim.run ~until:(Sim.now sim +. 5.0) sim;
  let genesis = Option.get !genesis in
  let adjacency = Graph_gen.adjacency graph in
  Array.iteri
    (fun v neighbors ->
      Kshard.preload shards.(v mod shard_count) ~vertex:v ~neighbors ~event:genesis)
    adjacency;
  (* clients *)
  let rng = Rng.split (Sim.rng sim) in
  let n = graph.Graph_gen.n in
  let issued = ref 0 and completed = ref 0 in
  let started = Sim.now sim in
  let finished = ref started in
  let client_of i =
    let kronos =
      Kronos_service.Client.create ~net:chain_net ~addr:(5000 + i)
        ~coordinator:1000 ~request_timeout:5.0 ()
    in
    Kgraph.create ~net:gnet ~addr:(6000 + i) ~kronos ~shards:shard_addrs ()
  in
  let rec loop g =
    if !issued < ops then begin
      incr issued;
      let finish _ =
        incr completed;
        finished := Sim.now sim;
        loop g
      in
      if Rng.float rng 1.0 < 0.95 then
        Kgraph.recommend g (Rng.int rng n) (fun r -> finish r)
      else if Rng.bool rng then
        Kgraph.add_friendship g (Rng.int rng n) (Rng.int rng n) (fun () -> finish None)
      else
        Kgraph.add_vertex g (n + Rng.int rng 1000) (fun () -> finish None)
    end
  in
  for i = 0 to clients - 1 do
    loop (client_of i)
  done;
  Sim.run ~until:(started +. 36_000.0) sim;
  let traversal_fraction =
    (* the paper's metric: fraction of shard operations that made Kronos do
       an actual graph traversal (degree-guarded trivial checks excluded) *)
    let shard_ops =
      Array.fold_left (fun acc s -> acc + Kshard.vertex_touches s) 0 shards
    in
    let engine = Option.get (Kronos_service.Server.engine_of cluster 0) in
    let traversals = (Kronos.Engine.stats engine).Kronos.Engine.traversals in
    if shard_ops = 0 then 0.0
    else Float.min 1.0 (float_of_int traversals /. float_of_int shard_ops)
  in
  ( float_of_int !completed /. (!finished -. started),
    !completed,
    traversal_fraction )

let run_lockgraph ~seed ~graph ~ops =
  let sim = Sim.create ~seed () in
  let gnet = Net.create sim in
  let shard_addrs = Array.init shard_count (fun i -> i) in
  let shards =
    Array.map
      (fun a -> Lshard.create ~net:gnet ~addr:a ~cost:request_cost ())
      shard_addrs
  in
  let adjacency = Graph_gen.adjacency graph in
  Array.iteri
    (fun v neighbors ->
      Lshard.preload shards.(v mod shard_count) ~vertex:v ~neighbors)
    adjacency;
  let rng = Rng.split (Sim.rng sim) in
  let ids = Lgraph.ids () in
  let n = graph.Graph_gen.n in
  let issued = ref 0 and completed = ref 0 in
  let started = Sim.now sim in
  let finished = ref started in
  let client_of i =
    Lgraph.create ~net:gnet ~addr:(6000 + i) ~shards:shard_addrs ~ids
      ~max_retries:1_000 ()
  in
  let rec loop g =
    if !issued < ops then begin
      incr issued;
      let finish _ =
        incr completed;
        finished := Sim.now sim;
        loop g
      in
      if Rng.float rng 1.0 < 0.95 then
        Lgraph.recommend g (Rng.int rng n) (fun r -> finish r)
      else if Rng.bool rng then
        Lgraph.add_friendship g (Rng.int rng n) (Rng.int rng n) (fun () -> finish None)
      else Lgraph.add_vertex g (n + Rng.int rng 1000) (fun () -> finish None)
    end
  in
  for i = 0 to clients - 1 do
    loop (client_of i)
  done;
  Sim.run ~until:(started +. 36_000.0) sim;
  let retries =
    (* aggregate across clients is not directly reachable here; report
       timeouts from the shards instead *)
    Array.fold_left (fun acc s -> acc + Lshard.timeouts s) 0 shards
  in
  (float_of_int !completed /. (!finished -. started), !completed, retries)

let run () =
  Bench_util.section
    "Figure 6: KronoGraph vs lock-based graph store (95% read / 5% write, 32 clients)";
  Bench_util.paper "speedups: Twitter 59x, dense (deg 100) 8.3x, sparse (deg 10) 1.4x";
  Bench_util.paper "Twitter run: ~13.4%% of operations required a Kronos traversal";
  let rng = Rng.create ~seed:21L in
  let quick = not !Bench_util.full_scale in
  let loads =
    [
      { name = "sparse (deg 10)";
        graph = Graph_gen.erdos_renyi_gnm ~rng ~n:(if quick then 2_000 else 10_000)
            ~m:(if quick then 10_000 else 50_000);
        paper_speedup = 1.4 };
      { name = "dense (deg 100)";
        graph = Graph_gen.erdos_renyi_gnm ~rng ~n:(if quick then 2_000 else 10_000)
            ~m:(if quick then 100_000 else 500_000);
        paper_speedup = 8.3 };
      { name = "twitter-like";
        graph = Graph_gen.twitter_like ~rng ~scale:(if quick then 0.05 else 0.5) ();
        paper_speedup = 59.0 };
    ]
  in
  let ops = Bench_util.scaled 600 3_000 in
  Printf.printf "  %-18s %14s %14s %9s %9s %s\n%!" "graph" "kronograph"
    "lock-based" "speedup" "(paper)" "kronos-traversal-ops";
  List.iter
    (fun load ->
      let k_tput, k_done, traversal_fraction =
        run_kronograph ~seed:3L ~graph:load.graph ~ops ()
      in
      let l_tput, l_done, _timeouts = run_lockgraph ~seed:3L ~graph:load.graph ~ops in
      ignore k_done;
      ignore l_done;
      Printf.printf "  %-18s %11.0f/s %11.0f/s %8.1fx %8.1fx %9.1f%%\n%!" load.name
        k_tput l_tput (k_tput /. l_tput) load.paper_speedup
        (100.0 *. traversal_fraction))
    loads;
  Bench_util.ours
    "shape check: the KronoGraph advantage grows with density and with hubs (heavy tails)"
