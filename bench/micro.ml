(* Unplotted micro-measurements from Section 4.2, plus the ablations called
   out in DESIGN.md. *)

open Kronos
module Rng = Kronos_simnet.Rng
module Graph_gen = Kronos_workload.Graph_gen

(* Dependency creation: the paper measures 49-50 µs per assign_order that
   needs no traversal work beyond the coherency check on fresh events. *)
let dependency_creation () =
  Bench_util.section "Microbenchmark: dependency creation (no traversal)";
  Bench_util.paper "49 µs (14.7%% of ops) / 50 µs (85.3%%) across 1 M events (through RPC)";
  let engine = Engine.create () in
  let ns =
    Bench_util.bechamel_ns_per_op ~name:"assign_order/fresh" (fun () ->
        let a = Engine.create_event engine in
        let b = Engine.create_event engine in
        match Engine.assign_order engine [ Order.must_before a b ] with
        | Ok _ -> ()
        | Error _ -> assert false)
  in
  Bench_util.ours
    "in-process create+create+assign on fresh events: %s (tight, constant)"
    (Bench_util.pp_ns ns);
  let total = Bench_util.scaled 200_000 1_000_000 in
  let engine = Engine.create () in
  let samples = Array.make (total / 1000) 0.0 in
  for i = 0 to Array.length samples - 1 do
    let pairs =
      Array.init 1000 (fun _ ->
          let a = Engine.create_event engine in
          let b = Engine.create_event engine in
          (a, b))
    in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (a, b) ->
        ignore (Engine.assign_order engine [ Order.must_before a b ]))
      pairs;
    samples.(i) <- (Unix.gettimeofday () -. t0) /. 1000.0 *. 1e9
  done;
  Array.sort compare samples;
  Bench_util.ours "across %d dependencies: p50 = %s, p99 = %s (bimodal-tight as in paper)"
    total
    (Bench_util.pp_ns (Bench_util.percentile samples 0.5))
    (Bench_util.pp_ns (Bench_util.percentile samples 0.99))

(* Ablation: the Briggs-Torczon sparse set against a Hashtbl visited set and
   against clearing a dense bit array per query — the design choice behind
   Figure 3. *)
let sparse_set_ablation_on ~label ~m =
  let n = 10_000 in
  let rng = Rng.create ~seed:5L in
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m in
  (* directed adjacency, low -> high *)
  let succ = Array.make n [] in
  Array.iter (fun (u, v) -> succ.(u) <- v :: succ.(u)) g.Graph_gen.edges;
  let query_rng = Rng.create ~seed:7L in
  let bfs_sparse =
    let visited = Sparse_set.create n in
    let queue = Array.make n 0 in
    fun src dst ->
      Sparse_set.clear visited;
      Sparse_set.add visited src;
      queue.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      let found = ref false in
      while not !found && !head < !tail do
        let u = queue.(!head) in
        incr head;
        List.iter
          (fun w ->
            if w = dst then found := true
            else if not (Sparse_set.mem visited w) then begin
              Sparse_set.add visited w;
              queue.(!tail) <- w;
              incr tail
            end)
          succ.(u)
      done;
      !found
  in
  let bfs_hashtbl =
    let queue = Array.make n 0 in
    fun src dst ->
      let visited = Hashtbl.create 64 in
      Hashtbl.replace visited src ();
      queue.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      let found = ref false in
      while not !found && !head < !tail do
        let u = queue.(!head) in
        incr head;
        List.iter
          (fun w ->
            if w = dst then found := true
            else if not (Hashtbl.mem visited w) then begin
              Hashtbl.replace visited w ();
              queue.(!tail) <- w;
              incr tail
            end)
          succ.(u)
      done;
      !found
  in
  let bfs_dense_clear =
    let visited = Array.make n false in
    let queue = Array.make n 0 in
    fun src dst ->
      Array.fill visited 0 n false;
      visited.(src) <- true;
      queue.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      let found = ref false in
      while not !found && !head < !tail do
        let u = queue.(!head) in
        incr head;
        List.iter
          (fun w ->
            if w = dst then found := true
            else if not visited.(w) then begin
              visited.(w) <- true;
              queue.(!tail) <- w;
              incr tail
            end)
          succ.(u)
      done;
      !found
  in
  let bench name f =
    let ns =
      Bench_util.bechamel_ns_per_op ~name (fun () ->
          let s = Rng.int query_rng n and d = Rng.int query_rng n in
          ignore (f s d))
    in
    Printf.printf "  %-18s %-24s %s/query\n%!" label name (Bench_util.pp_ns ns)
  in
  bench "sparse set (paper)" bfs_sparse;
  bench "hashtbl visited" bfs_hashtbl;
  bench "dense array + clear" bfs_dense_clear

let sparse_set_ablation () =
  Bench_util.section "Ablation: BFS visited-set structure (Figure 3 design choice)";
  (* small traversals: the O(V) clear of the dense array dominates, the
     hashtbl allocates — the sparse set's home turf *)
  sparse_set_ablation_on ~label:"sparse (m=5k)" ~m:5_000;
  (* big traversals amortize everything; the sparse set must stay
     competitive *)
  sparse_set_ablation_on ~label:"dense (m=50k)" ~m:50_000;
  Bench_util.ours
    "the sparse set wins when traversals are small relative to |V| and ties when they are not"

(* Ablation: must-before-prefer batch ordering vs naive in-request-order
   application.  The engine's semantics guarantee a prefer can never abort a
   satisfiable must; applying the same batches one pair at a time, in the
   order given, aborts some of them. *)
let prefer_ordering_ablation () =
  Bench_util.section "Ablation: must-before-prefer batches vs naive in-order application";
  let trials = 2_000 in
  let rng = Rng.create ~seed:11L in
  let batch_aborts = ref 0 in
  let naive_aborts = ref 0 in
  for _ = 1 to trials do
    (* events a b; adversarial batch: prefer (b->a) listed first, must (a->b) second *)
    let engine = Engine.create () in
    let a = Engine.create_event engine in
    let b = Engine.create_event engine in
    let x = Engine.create_event engine in
    (* random warm-up edge to vary the shapes *)
    if Rng.bool rng then
      ignore (Engine.assign_order engine [ Order.must_before x a ]);
    let batch = [ Order.prefer_before b a; Order.must_before a b ] in
    (match Engine.assign_order engine batch with
     | Ok _ -> ()
     | Error _ -> incr batch_aborts);
    (* naive: one at a time, in the order given *)
    let engine = Engine.create () in
    let a = Engine.create_event engine in
    let b = Engine.create_event engine in
    let naive =
      [ Order.must_before b a
        (* a naive engine has no prefer scheduling: the prefer is applied
           eagerly as an edge, making the later must impossible *);
        Order.must_before a b ]
    in
    if List.exists
         (fun req ->
           match Engine.assign_order engine [ req ] with
           | Ok _ -> false
           | Error _ -> true)
         naive
    then incr naive_aborts
  done;
  Printf.printf "  batched (must first):     %d/%d aborted\n" !batch_aborts trials;
  Printf.printf "  naive in-order:           %d/%d aborted\n%!" !naive_aborts trials;
  Bench_util.ours
    "applying musts before prefers keeps adversarially-ordered batches abort-free"

(* Ablation: the Section 2.5 server-side traversal-result memo, on a skewed
   query workload over a dense graph (where each positive BFS is
   expensive). *)
let traversal_cache_ablation () =
  Bench_util.section "Ablation: server-side traversal-result memo (Section 2.5)";
  let n = 5_000 in
  let build ~traversal_cache =
    let engine =
      Engine.create ~config:{ Engine.default_config with Engine.initial_capacity = n; traversal_cache } ()
    in
    let rng = Rng.create ~seed:5L in
    let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m:100_000 in
    let ids = Array.init n (fun _ -> Engine.create_event engine) in
    let gr = Engine.graph engine in
    Array.iter (fun (u, v) -> Graph.add_edge gr ids.(u) ids.(v)) g.Graph_gen.edges;
    (engine, ids)
  in
  (* a Zipf-skewed popular set of pairs: hot queries repeat, as a
     high-degree-vertex cache expects *)
  let zipf = Kronos_workload.Zipf.create ~n:200 ~exponent:1.1 () in
  let measure ~traversal_cache =
    let engine, ids = build ~traversal_cache in
    let pick = Rng.create ~seed:17L in
    let hot =
      Array.init 200 (fun _ -> (ids.(Rng.int pick n), ids.(Rng.int pick n)))
    in
    let rng = Rng.create ~seed:23L in
    let ops = ref 0 in
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 0.5 do
      for _ = 1 to 50 do
        ignore
          (Engine.query_order engine
             [ hot.(Kronos_workload.Zipf.sample zipf rng) ]);
        incr ops
      done
    done;
    float_of_int !ops /. (Unix.gettimeofday () -. t0)
  in
  let off = measure ~traversal_cache:0 in
  let on_ = measure ~traversal_cache:4096 in
  Printf.printf "  memo off: %s\n" (Bench_util.pp_ops off);
  Printf.printf "  memo on:  %s\n%!" (Bench_util.pp_ops on_);
  Bench_util.ours "the positive-reachability memo yields %.1fx on skewed hot queries"
    (on_ /. off)

(* Ablation: the observability gate (DESIGN.md §10).  Metrics are compiled
   into every layer but gated on one process-wide flag; the budget is <5%
   overhead on the query hot path with recording on, and bit-identical
   behaviour with the no-op sink. *)
let metrics_overhead_ablation () =
  Bench_util.section "Ablation: metrics gate on the query hot path (<5% budget)";
  let n = 2_000 in
  let build () =
    let engine =
      Engine.create ~config:{ Engine.default_config with Engine.initial_capacity = n } ()
    in
    let rng = Rng.create ~seed:5L in
    let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m:20_000 in
    let ids = Array.init n (fun _ -> Engine.create_event engine) in
    let gr = Engine.graph engine in
    Array.iter (fun (u, v) -> Graph.add_edge gr ids.(u) ids.(v)) g.Graph_gen.edges;
    (engine, ids)
  in
  let engine, ids = build () in
  let measure name =
    let rng = Rng.create ~seed:13L in
    Bench_util.bechamel_ns_per_op ~name (fun () ->
        ignore
          (Engine.query_order engine
             [ (ids.(Rng.int rng n), ids.(Rng.int rng n)) ]))
  in
  Kronos_metrics.set_enabled false;
  let off = measure "query/metrics-off" in
  Kronos_metrics.set_enabled true;
  let on_ = measure "query/metrics-on" in
  let overhead = (on_ -. off) /. off *. 100. in
  Printf.printf "  metrics off: %s/query\n" (Bench_util.pp_ns off);
  Printf.printf "  metrics on:  %s/query (%+.1f%% overhead)\n%!" (Bench_util.pp_ns on_)
    overhead;
  (* the no-op sink must not change behaviour, only speed: the same seeded
     workload produces the same answers with recording on and off *)
  let digest enabled =
    Kronos_metrics.set_enabled enabled;
    let engine, ids = build () in
    let rng = Rng.create ~seed:17L in
    let acc = ref 0 in
    for _ = 1 to 10_000 do
      match
        Engine.query_order engine [ (ids.(Rng.int rng n), ids.(Rng.int rng n)) ]
      with
      | Ok [ rel ] ->
        acc :=
          (!acc * 31)
          + (match rel with
             | Order.Before -> 1
             | Order.After -> 2
             | Order.Concurrent -> 3
             | Order.Same -> 4)
      | _ -> assert false
    done;
    Kronos_metrics.set_enabled true;
    (!acc, Engine.stats engine)
  in
  let d_on = digest true and d_off = digest false in
  Printf.printf "  divergence with no-op sink: %s\n%!"
    (if d_on = d_off then "none (bit-identical)" else "DIVERGED");
  Bench_util.ours
    "gate overhead %+.1f%% on the query hot path (budget 5%%), no-op sink diverges: %b"
    overhead (d_on <> d_off)

let run () =
  dependency_creation ();
  sparse_set_ablation ();
  prefer_ordering_ablation ();
  traversal_cache_ablation ();
  metrics_overhead_ablation ()
