(* Figure 8: query_order scalability with the number of replicas.

   The paper pre-loads a random graph (10k vertices / 50k edges), runs 64
   clients issuing query_order against the replica set, and shows aggregate
   throughput growing near-linearly from 2 to 12 servers — possible because
   the monotonicity invariant lets stale replicas answer ordered queries
   without validation (Section 2.5).

   Replicas here charge the *measured wall-clock cost* of each real engine
   call as virtual busy time (`Measured`), so the scaling curve reflects
   genuine BFS work on the actual graph, not a synthetic constant. *)

open Kronos
open Kronos_simnet
module Graph_gen = Kronos_workload.Graph_gen
module Message = Kronos_wire.Message

let clients = 128
let vertices = 10_000
let edges = 50_000

(* Pre-load the same deterministic graph into every replica's engine
   directly (the engines are identical state machines, so identical loads
   leave identical states — exactly what replicating the load through the
   chain would produce, minus hours of simulated traffic).  Edges are
   oriented low -> high, hence acyclic by construction. *)
let preload cluster ~graph =
  let ids = ref [||] in
  List.iter
    (fun (_, engine) ->
      let engine = !engine in
      let eids = Array.init vertices (fun _ -> Engine.create_event engine) in
      let g = Engine.graph engine in
      Array.iter
        (fun (u, v) -> Graph.add_edge g eids.(u) eids.(v))
        graph.Graph_gen.edges;
      ids := eids)
    cluster.Kronos_service.Server.replicas;
  !ids

(* Mean wall-clock cost of one random query_order on the experiment graph,
   measured on a scratch engine.  Using this as each replica's (fixed)
   per-request service time keeps the scaling curve grounded in the real
   BFS work while excluding GC-pause noise from the simulation. *)
let measured_query_cost ~graph:(g : Graph_gen.t) =
  let engine = Engine.create () in
  let ids = Array.init vertices (fun _ -> Engine.create_event engine) in
  let gr = Engine.graph engine in
  Array.iter (fun (u, v) -> Graph.add_edge gr ids.(u) ids.(v)) g.Graph_gen.edges;
  let rng = Rng.create ~seed:123L in
  let samples = 2_000 in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to samples do
    let a = ids.(Rng.int rng vertices) and b = ids.(Rng.int rng vertices) in
    ignore (Engine.query_order engine [ (a, b) ])
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int samples

let measure ~replicas ~seed ~window ~service_cost =
  let sim = Sim.create ~seed () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let cluster =
    Kronos_service.Server.deploy ~net ~coordinator:1000
      ~replicas:(List.init replicas (fun i -> i))
      ~service:(`Fixed service_cost) ~failure_timeout:3600.0 ()
  in
  let rng = Rng.create ~seed:77L in
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n:vertices ~m:edges in
  let ids = preload cluster ~graph:g in
  (* random pairs, as in the paper ("random query_order requests on the
     graph, checking for preexisting relationships").  The workload is
     read-only, so every replica is provably current and concurrent answers
     need no tail validation — which is what lets the reads apportion. *)
  ignore (Array.length g.Graph_gen.edges);
  let pick_pair rng = (ids.(Rng.int rng vertices), ids.(Rng.int rng vertices)) in
  Gc.full_major ();  (* keep GC pauses out of the measured service times *)
  let completed = ref 0 in
  let started = Sim.now sim in
  let stop_at = started +. window in
  let rec loop client rng =
    if Sim.now sim < stop_at then begin
      (* cache off: we are measuring the service, not the client cache *)
      Kronos_service.Client.query_order client ~stale:true ~revalidate:false
        [ pick_pair rng ]
        (fun _ ->
          incr completed;
          loop client rng)
    end
  in
  for i = 0 to clients - 1 do
    let client =
      Kronos_service.Client.create ~net ~addr:(5000 + i) ~coordinator:1000
        ~cache_capacity:0 ~request_timeout:30.0 ()
    in
    loop client (Rng.split (Sim.rng sim))
  done;
  Sim.run ~until:stop_at sim;
  float_of_int !completed /. window

let run () =
  Bench_util.section "Figure 8: query_order throughput vs number of replicas";
  Bench_util.paper
    "near-linear scaling from 2 to 12 servers (paper peaks ~5-6M ops/s; absolute numbers testbed-specific)";
  let window = if !Bench_util.full_scale then 20.0 else 5.0 in
  let replica_counts = [ 2; 4; 6; 8; 10; 12 ] in
  let rng = Rng.create ~seed:77L in
  let service_cost =
    measured_query_cost ~graph:(Graph_gen.erdos_renyi_gnm ~rng ~n:vertices ~m:edges)
  in
  Bench_util.note "  (per-query service cost, measured on the real engine: %s)"
    (Bench_util.pp_ns (service_cost *. 1e9));
  Printf.printf "  %10s %16s %18s\n%!" "replicas" "throughput" "vs 2 replicas";
  let base = ref None in
  List.iter
    (fun replicas ->
      let tput = measure ~replicas ~seed:5L ~window ~service_cost in
      let baseline = match !base with None -> base := Some tput; tput | Some b -> b in
      Printf.printf "  %10d %16s %17.2fx\n%!" replicas (Bench_util.pp_ops tput)
        (tput /. baseline))
    replica_counts;
  Bench_util.ours
    "shape check: aggregate throughput grows with each added replica (stale reads scale)"
