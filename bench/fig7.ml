(* Figure 7: transactional key-value store throughput.

   Three bank implementations over the same sharded store, 64 concurrent
   clients.  Paper: Kronos-ordered transactions run at 94 % of the
   non-transactional "put-and-pray" baseline and 3.6x the lock-based one.

   Shards are capacity-modelled (fixed per-request CPU cost), so throughput
   reflects server load and lock-induced blocking, not just link latency —
   the regime the paper's cluster operated in. *)

open Kronos_simnet
open Kronos_kvstore
open Kronos_txn
module Bank = Kronos_workload.Bank

type result = {
  throughput : float;
  retries : int;
  conserved : bool;
}

(* The paper's cluster is server-bound: a handful of shard servers saturated
   by 64 clients.  Four shards at 50 µs/request saturate well below the
   offered load, so throughput reflects per-transaction server work (and
   lock-induced blocking), as in the paper. *)
let shard_count = 4
let shard_service_time = 50e-6
let kronos_service_time = 10e-6

let run_mode ~mode ~clients ~ops ~accounts ~skew ~seed =
  let sim = Sim.create ~seed () in
  let kv_net = Net.create sim in
  let shard_addrs = Array.init shard_count (fun i -> i) in
  let shards =
    Array.map
      (fun a -> Shard.create ~net:kv_net ~addr:a ~service_time:shard_service_time ())
      shard_addrs
  in
  let chain_net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  (* single Kronos instance on its own server, as in the paper's application
     benchmarks (Section 4.1; fault tolerance is evaluated separately) *)
  ignore
    (Kronos_service.Server.deploy ~net:chain_net ~coordinator:1000
       ~replicas:[ 0 ] ~service:(`Fixed kronos_service_time) ());
  (* seed accounts *)
  let seeder = Kv_client.create ~net:kv_net ~addr:900 in
  for i = 0 to accounts - 1 do
    let key = Bank.account_key i in
    Kv_client.request seeder
      ~shard:shard_addrs.(Router.shard_of ~shards:shard_count key)
      (Kv_msg.Put { key; value = "1000" })
      (fun _ -> ())
  done;
  Sim.run ~until:(Sim.now sim +. 30.0) sim;
  let ids = Executor.id_source () in
  let bank = Bank.create ~rng:(Rng.split (Sim.rng sim)) ~accounts ~skew () in
  let executors =
    Array.init clients (fun i ->
        let kv = Kv_client.create ~net:kv_net ~addr:(100 + i) in
        let kronos =
          match mode with
          | Executor.Kronos_ordered ->
            Some
              (Kronos_service.Client.create ~net:chain_net ~addr:(5000 + i)
                 ~coordinator:1000 ~request_timeout:5.0 ())
          | Executor.Put_and_pray | Executor.Locking -> None
        in
        Executor.create ~mode ~sim ~kv ~shards:shard_addrs ~ids ?kronos ())
  in
  let issued = ref 0 and completed = ref 0 in
  let started = Sim.now sim in
  let finished = ref started in
  let rec loop exec =
    if !issued < ops then begin
      incr issued;
      Executor.transfer exec (Bank.next_transfer bank) (fun _ ->
          incr completed;
          finished := Sim.now sim;
          loop exec)
    end
  in
  Array.iter loop executors;
  Sim.run ~until:(started +. 3600.0) sim;
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    Array.iter
      (fun shard ->
        match Shard.peek shard (Bank.account_key i) with
        | Some v -> total := !total + int_of_string v
        | None -> ())
      shards
  done;
  {
    throughput =
      (if !completed = 0 then 0.0
       else float_of_int !completed /. (!finished -. started));
    retries = Array.fold_left (fun acc e -> acc + Executor.retries e) 0 executors;
    conserved = !total = accounts * 1000;
  }

let run () =
  Bench_util.section "Figure 7: transactional KV store (bank workload, 64 clients)";
  Bench_util.paper
    "put-and-pray ~4.7k tx/s, locking ~1.2k tx/s, Kronos ~4.4k tx/s";
  Bench_util.paper "Kronos = 3.6x locking, 94%% of put-and-pray";
  let ops = Bench_util.scaled 3_000 20_000 in
  let clients = 64 and accounts = 2_000 and skew = 0.8 in
  let bench mode label =
    let r = run_mode ~mode ~clients ~ops ~accounts ~skew ~seed:9L in
    Printf.printf "  %-14s %10.0f tx/s (virtual)   retries: %-5d money %s\n%!"
      label r.throughput r.retries
      (if r.conserved then "conserved"
       else if mode = Executor.Put_and_pray then "LOST (expected for put-and-pray)"
       else "LOST (BUG!)");
    r
  in
  let pnp = bench Executor.Put_and_pray "put-and-pray" in
  let locking = bench Executor.Locking "locking" in
  let kronos = bench Executor.Kronos_ordered "kronos" in
  Bench_util.ours "Kronos/locking = %.1fx (paper: 3.6x); Kronos/put-and-pray = %.0f%% (paper: 94%%)"
    (kronos.throughput /. locking.throughput)
    (100.0 *. kronos.throughput /. pnp.throughput)
