(* Smoke benchmark: a seconds-fast performance snapshot written to
   BENCH_smoke.json (override the path with KRONOS_SMOKE_OUT), so CI can
   track coarse regressions without running the full figure harness.

   Four families of numbers:
   - in-process engine hot paths (ns/op via Bechamel);
   - the certify subsystem: proof generation/verification ns/op and the
     digest-maintenance overhead on the assign path (DESIGN.md §13);
   - the replicated service on the simulated network, with per-op compute
     latency quantiles taken from the client's own metrics histograms —
     the same instruments `kronos_cli stats` reports in production;
   - the federated service (2 shards behind one router): cross-shard
     two-shard-commit and scatter-query closed-loop rates, plus the
     deterministic 4-vs-1-shard write-scaling ratio in virtual time. *)

open Kronos
module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module M = Kronos_metrics

let results : (string * float * string) list ref = ref []
let record name value unit_ = results := (name, value, unit_) :: !results

let engine_hot_paths () =
  let engine = Engine.create () in
  let assign_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/assign" (fun () ->
        let a = Engine.create_event engine in
        let b = Engine.create_event engine in
        ignore (Engine.assign_order engine [ Order.must_before a b ]))
  in
  record "engine.assign_fresh" assign_ns "ns/op";
  (* a long chain makes the query a real traversal *)
  let engine = Engine.create () in
  let n = 2_000 in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  for i = 0 to n - 2 do
    ignore (Engine.assign_order engine [ Order.must_before ids.(i) ids.(i + 1) ])
  done;
  let rng = Kronos_simnet.Rng.create ~seed:7L in
  let query_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/query" (fun () ->
        let u = Kronos_simnet.Rng.int rng n and v = Kronos_simnet.Rng.int rng n in
        ignore (Engine.query_order engine [ (ids.(u), ids.(v)) ]))
  in
  record "engine.query_chain" query_ns "ns/op";
  (* ordered pairs on the same chain: the pure label-hit path — one
     chain-label compare decides [Before], no BFS at any distance
     (DESIGN.md §15) *)
  let rng = Kronos_simnet.Rng.create ~seed:9L in
  let label_hit_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/label_hit" (fun () ->
        let u = Kronos_simnet.Rng.int rng (n - 1) in
        let v = u + 1 + Kronos_simnet.Rng.int rng (n - u - 1) in
        ignore (Engine.query_order engine [ (ids.(u), ids.(v)) ]))
  in
  record "engine.query_chain_label_hit" label_hit_ns "ns/op";
  (* share of reachability probes the label index answered over the two
     query benches above; 1.0 means the BFS never ran *)
  let hits = float_of_int (Engine.label_hits engine)
  and misses = float_of_int (Engine.label_misses engine) in
  record "engine.label_hit_rate"
    (if hits +. misses > 0. then hits /. (hits +. misses) else 0.)
    "x";
  (* two unrelated chains: every cross-chain pair is Concurrent, the worst
     case for the query path (historically two full BFS traversals) *)
  let engine = Engine.create () in
  let chain len = Array.init len (fun _ -> Engine.create_event engine) in
  let c1 = chain n and c2 = chain n in
  Array.iter
    (fun c ->
      for i = 0 to n - 2 do
        ignore (Engine.assign_order engine [ Order.must_before c.(i) c.(i + 1) ])
      done)
    [| c1; c2 |];
  let rng = Kronos_simnet.Rng.create ~seed:13L in
  let concurrent_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/concurrent" (fun () ->
        let u = Kronos_simnet.Rng.int rng n and v = Kronos_simnet.Rng.int rng n in
        ignore (Engine.query_order engine [ (c1.(u), c2.(v)) ]))
  in
  record "engine.query_concurrent" concurrent_ns "ns/op";
  (* must-edge batches into a dense DAG: each assign pays the engine's
     cycle/implication checks against a graph with many paths *)
  let engine = Engine.create () in
  let m = 256 in
  let dense = Array.init m (fun _ -> Engine.create_event engine) in
  let rng = Kronos_simnet.Rng.create ~seed:23L in
  for _ = 1 to 4 * m do
    let i = Kronos_simnet.Rng.int rng (m - 1) in
    let j = i + 1 + Kronos_simnet.Rng.int rng (m - i - 1) in
    ignore (Engine.assign_order engine [ Order.must_before dense.(i) dense.(j) ])
  done;
  let must_dense_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/must_dense" (fun () ->
        let i = Kronos_simnet.Rng.int rng (m - 1) in
        let j = i + 1 + Kronos_simnet.Rng.int rng (m - i - 1) in
        ignore (Engine.assign_order engine [ Order.must_before dense.(i) dense.(j) ]))
  in
  record "engine.assign_must_dense" must_dense_ns "ns/op"

(* Multicore query plane (DESIGN.md §14): the worst-case concurrent
   workload of [engine.query_concurrent], answered from a frozen
   {!Engine.View} by every available domain at once.  Three series:
   - [engine.query_frozen_1]: single-domain ns/op over the frozen view —
     the publication-path sanity check (should track
     [engine.query_concurrent], minus cache/counter upkeep);
   - [engine.query_parallel]: aggregate ops/s with
     [Domain.recommended_domain_count] reader domains;
   - [engine.query_parallel_speedup]: that rate divided by the measured
     single-domain *live* rate — the number the multicore work exists
     for.  [check] holds it above a hard 2x floor, but only on machines
     with at least 4 recommended domains; on smaller hosts the series is
     still recorded and baseline-gated like everything else. *)
let query_parallel_smoke () =
  let engine = Engine.create () in
  let n = 2_000 in
  let chain len = Array.init len (fun _ -> Engine.create_event engine) in
  let c1 = chain n and c2 = chain n in
  Array.iter
    (fun c ->
      for i = 0 to n - 2 do
        ignore (Engine.assign_order engine [ Order.must_before c.(i) c.(i + 1) ])
      done)
    [| c1; c2 |];
  let rng = Kronos_simnet.Rng.create ~seed:13L in
  let live_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/parallel_base"
      (fun () ->
        let u = Kronos_simnet.Rng.int rng n and v = Kronos_simnet.Rng.int rng n in
        ignore (Engine.query_order engine [ (c1.(u), c2.(v)) ]))
  in
  let view = Engine.publish engine in
  let domains = max 1 (Domain.recommended_domain_count ()) in
  let total = if !Bench_util.full_scale then 400_000 else 120_000 in
  let run_with d =
    let per = total / d in
    let t0 = Unix.gettimeofday () in
    let workers =
      Array.init d (fun k ->
          Domain.spawn (fun () ->
              let rng =
                Kronos_simnet.Rng.create ~seed:(Int64.of_int (100 + k))
              in
              for _ = 1 to per do
                let u = Kronos_simnet.Rng.int rng n
                and v = Kronos_simnet.Rng.int rng n in
                ignore (Engine.View.query view c1.(u) c2.(v))
              done))
    in
    Array.iter Domain.join workers;
    float_of_int (per * d) /. (Unix.gettimeofday () -. t0)
  in
  let rate1 = run_with 1 in
  let rate_all = run_with domains in
  record "engine.query_frozen_1" (1e9 /. rate1) "ns/op";
  record "engine.query_parallel" rate_all "ops/s";
  record "engine.query_parallel_speedup" (rate_all *. live_ns /. 1e9) "x"

(* Certify hot paths (DESIGN.md §13): proof generation and verification
   over a real chain, plus the assign-path cost of digest maintenance —
   the fresh-assign workload of [engine.assign_fresh] with commitment
   chains on and off, and the relative overhead as a percentage.  Every
   fresh edge folds one link — two SHA-256 compressions — so the pct
   series measures a deterministic per-edge cost; [check] holds it under
   [assign_overhead_budget_pct] rather than ratio-gating it against the
   baseline (a relative gate on a difference of two noisy numbers fires
   on noise, a budget fires on extra folds). *)
let certify_smoke () =
  let engine = Engine.create () in
  let n = 512 in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  for i = 0 to n - 2 do
    ignore (Engine.assign_order engine [ Order.must_before ids.(i) ids.(i + 1) ])
  done;
  let g = Engine.current_view engine in
  let module Prover = Kronos_certify.Prover in
  let module Verifier = Kronos_certify.Verifier in
  let rng = Kronos_simnet.Rng.create ~seed:41L in
  let prove_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/prove" (fun () ->
        let i = Kronos_simnet.Rng.int rng (n - 64) in
        let j = i + 1 + Kronos_simnet.Rng.int rng 63 in
        ignore (Prover.prove g ~source:ids.(i) ~target:ids.(j)))
  in
  record "certify.prove" prove_ns "ns/op";
  let cert =
    match Prover.prove g ~source:ids.(0) ~target:ids.(n - 1) with
    | Some c -> c
    | None -> failwith "smoke: chain path must be provable"
  in
  let verify_ns =
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/verify" (fun () ->
        match Verifier.verify cert with
        | Ok () -> ()
        | Error m -> failwith ("smoke: " ^ m))
  in
  record "certify.verify" verify_ns "ns/op";
  (* digest-maintenance overhead on the fresh-assign path: every benched
     edge is brand new, so it deterministically pays its link folds.  (An
     older variant measured the dense-DAG workload instead, where most
     batch edges are already implied and fold nothing: the pct came out
     as a small difference between two mostly-identical noisy numbers,
     and once the chain-label index collapsed the base cost it swung by
     over 100 points between runs.) *)
  let assign_ns ~digests =
    let engine =
      Engine.create ~config:{ Engine.default_config with digests } ()
    in
    Bench_util.bechamel_ns_per_op ~quota:0.25 ~name:"smoke/assign_digest"
      (fun () ->
        let a = Engine.create_event engine in
        let b = Engine.create_event engine in
        ignore (Engine.assign_order engine [ Order.must_before a b ]))
  in
  (* Interleave three windows per mode and keep the minimum: a single
     0.25 s window inherits whatever GC state the preceding benches left
     behind and was observed swinging by 1.8x between runs, which a ratio
     of two such numbers amplifies into >100-point pct jumps.  The
     per-mode minimum is the noise-floor estimate, and interleaving keeps
     slow drift (the benched engines grow as they run) from biasing one
     mode. *)
  let off = ref infinity and on = ref infinity in
  for _ = 1 to 3 do
    off := Float.min !off (assign_ns ~digests:false);
    on := Float.min !on (assign_ns ~digests:true)
  done;
  let off = !off and on = !on in
  record "certify.assign_digests_off" off "ns/op";
  record "certify.assign_digests_on" on "ns/op";
  record "certify.assign_overhead_pct" (100. *. (on -. off) /. off) "pct"

(* Documented budget (DESIGN.md §13) for [certify.assign_overhead_pct]:
   the two software SHA-256 compressions a fresh edge folds cost ~2 µs,
   roughly tripling a fresh-assign path that the chain-label index has
   collapsed to ~1 µs — so the honest cost of the two mandated folds
   lands around 200 pct.  [check] holds the series under this ceiling —
   generous against scheduler noise on the noise-floor estimate above,
   but an extra fold sneaking onto the path (3 compressions ≈ +100
   further points) still fails. *)
let assign_overhead_budget_pct = 250.

let service_closed_loop () =
  M.reset ();
  let sim = Sim.create ~seed:42L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  ignore
    (Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ]
       ~ping_interval:0.1 ~failure_timeout:0.5 ());
  let client =
    Client.create ~net ~addr:2000 ~coordinator:1000 ~request_timeout:0.4 ()
  in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    while !result = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some (Ok x) -> x
    | Some (Error _) | None -> failwith "smoke: service op failed"
  in
  let ops = 2_000 in
  let t0 = Unix.gettimeofday () in
  let prev = ref None in
  for _ = 1 to ops do
    let e = await (Client.create_event client) in
    (match !prev with
     | Some p -> ignore (await (Client.assign_order client [ Order.must_before p e ]))
     | None -> ());
    prev := Some e
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = (2 * ops) - 1 in
  record "service.closed_loop" (float_of_int total /. elapsed) "ops/s";
  (* compute-latency quantiles from the instruments themselves *)
  List.iter
    (fun op ->
      let h = M.histogram (M.scope "client") ~labels:[ ("op", op) ] "op_seconds" in
      if M.Histogram.count h > 0 then begin
        List.iter
          (fun (q, tag) ->
            record
              (Printf.sprintf "service.%s.p%s" op tag)
              (1e6 *. M.Histogram.quantile h q)
              "us")
          [ (0.5, "50"); (0.9, "90"); (0.99, "99") ];
        record
          (Printf.sprintf "service.%s.max" op)
          (1e6 *. M.Histogram.max_value h)
          "us"
      end)
    [ "create_event"; "assign_order" ]

(* The query plane end to end: a single-replica chain over real loopback
   TCP whose reads are offloaded to a 4-domain query pool — the
   [kronosd --query-domains 4] configuration.  A closed loop of
   create/assign/query triples measures acknowledged ops/s through the
   whole stack (wire codec, chain, view publication, reader domain,
   completion queue).  A service-level series: recorded, never gated. *)
let service_closed_loop_domains4 () =
  let module Tcp = Kronos_transport.Tcp_transport in
  let module Event_loop = Kronos_transport.Event_loop in
  let module Chain = Kronos_replication.Chain in
  let module Query_pool = Kronos_service.Query_pool in
  let loop = Event_loop.create () in
  let config =
    { Tcp.default_config with backoff_min = 0.02; backoff_max = 0.2 }
  in
  let tcp () =
    Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
      ~decode:Kronos_replication.Chain_codec.decode ~config ()
  in
  let st = tcp () in
  let port = Tcp.listen st ~port:0 () in
  let pool = Query_pool.create ~loop ~domains:4 () in
  let _replica, _engine =
    Server.start_node ~net:(Tcp.transport st) ~addr:1 ~query_pool:pool ()
  in
  ignore
    (Chain.Coordinator.create ~net:(Tcp.transport st) ~addr:1000 ~chain:[ 1 ]
       ~ping_interval:0.1 ~failure_timeout:1.0 ());
  let ct = tcp () in
  List.iter
    (fun t ->
      Tcp.add_peer t 1 ~host:"127.0.0.1" ~port;
      Tcp.add_peer t 1000 ~host:"127.0.0.1" ~port)
    [ st; ct ];
  Tcp.connect_peers ct;
  let client =
    Client.create ~net:(Tcp.transport ct) ~addr:9001 ~coordinator:1000
      ~cache_capacity:0 ~request_timeout:0.25 ()
  in
  let iters = if !Bench_util.full_scale then 1_000 else 300 in
  let completed = ref 0 in
  let finished = ref false in
  let fail what = failwith ("smoke: domains4 " ^ what ^ " failed") in
  let rec step prev n =
    if n = 0 then finished := true
    else
      Client.create_event client (function
        | Error _ -> fail "create_event"
        | Ok e -> (
            incr completed;
            match prev with
            | None -> step (Some e) (n - 1)
            | Some p ->
                Client.assign_order client
                  [ Order.must_before p e ]
                  (function
                    | Error _ -> fail "assign_order"
                    | Ok _ ->
                        incr completed;
                        Client.query_order_e client
                          [ (p, e) ]
                          (function
                            | Error _ -> fail "query_order"
                            | Ok _ ->
                                incr completed;
                                step (Some e) (n - 1)))))
  in
  let t0 = Unix.gettimeofday () in
  step None iters;
  if
    not
      (Event_loop.run_until loop
         ~deadline:(Event_loop.now loop +. 120.)
         (fun () -> !finished))
  then failwith "smoke: domains4 closed loop timed out";
  let elapsed = Unix.gettimeofday () -. t0 in
  record "service.closed_loop_domains4"
    (float_of_int !completed /. elapsed)
    "ops/s";
  Query_pool.stop pool;
  Tcp.shutdown ct;
  Tcp.shutdown st

(* Federated service on the simulated network: a 2-shard deployment
   behind one router.  [fed.assign_cross_shard] is the closed-loop rate
   of two-shard commits (portal pair + guarded batches + reflection
   scan); [fed.query_scatter] the rate of cross-shard reads answered by
   frontier comparison or a two-shard probe. *)
let federation_smoke () =
  let sim = Sim.create ~seed:7L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let fed =
    Kronos_federation.Deploy.deploy ~net ~shards:[ 0; 1 ]
      ~replicas_per_shard:3 ~request_timeout:0.4 ()
  in
  let rt = fed.Kronos_federation.Deploy.router in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    while !result = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some (Ok x) -> x
    | Some (Error _) | None -> failwith "smoke: federated op failed"
  in
  let module Router = Kronos_federation.Router in
  let module Fid = Kronos_federation.Fid in
  let n = if !Bench_util.full_scale then 250 else 80 in
  let mint shard =
    let c = Option.get (Router.client_of rt shard) in
    Fid.make ~shard (await (Client.create_event c))
  in
  let left = Array.init n (fun _ -> mint 0)
  and right = Array.init n (fun _ -> mint 1) in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    ignore
      (await (Router.assign_order rt [ Router.must_before left.(i) right.(i) ]))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  record "fed.assign_cross_shard" (float_of_int n /. elapsed) "ops/s";
  let rng = Kronos_simnet.Rng.create ~seed:31L in
  let q = 2 * n in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to q do
    let i = Kronos_simnet.Rng.int rng n and j = Kronos_simnet.Rng.int rng n in
    ignore (await (Router.query_order rt [ (left.(i), right.(j)) ]))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  record "fed.query_scatter" (float_of_int q /. elapsed) "ops/s"

(* Write scaling in *virtual* time: aggregate assign throughput with
   [shards] chains, each replica charging a fixed simulated service time
   per command.  Four closed loops per shard issue chains of must-edges
   over disjoint events (the portal-quiet fast path), so the aggregate
   rate is bounded by per-shard service capacity and must rise with the
   shard count.  The recorded series is the 4-shard/1-shard ratio —
   deterministic (simulated clock, fixed seed), gated like the rest and
   additionally held above a hard 2x floor by [check]. *)
let scaling_rate ~shards =
  let sim = Sim.create ~seed:11L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let fed =
    Kronos_federation.Deploy.deploy ~net
      ~shards:(List.init shards (fun i -> i))
      ~replicas_per_shard:2 ~service:(`Fixed 0.002) ~request_timeout:0.4
      ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  let rt = fed.Kronos_federation.Deploy.router in
  let module Router = Kronos_federation.Router in
  let module Fid = Kronos_federation.Fid in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    while !result = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some (Ok x) -> x
    | Some (Error _) | None -> failwith "smoke: scaling op failed"
  in
  let mint shard =
    let c = Option.get (Router.client_of rt shard) in
    Fid.make ~shard (await (Client.create_event c))
  in
  let loops_per_shard = 4 and ops_per_loop = 12 in
  let chains =
    List.concat_map
      (fun s ->
        List.init loops_per_shard (fun _ ->
            Array.init (ops_per_loop + 1) (fun _ -> mint s)))
      (List.init shards (fun i -> i))
  in
  let live = ref (List.length chains) in
  let started = Sim.now sim in
  List.iter
    (fun chain ->
      let rec step i =
        if i >= ops_per_loop then decr live
        else
          Router.assign_order rt
            [ Router.must_before chain.(i) chain.(i + 1) ]
            (function
            | Ok _ -> step (i + 1)
            | Error _ -> failwith "smoke: scaling assign failed")
      in
      step 0)
    chains;
  while !live > 0 && Sim.pending sim > 0 do
    ignore (Sim.step sim)
  done;
  if !live > 0 then failwith "smoke: scaling loops did not finish";
  let elapsed = Sim.now sim -. started in
  float_of_int (shards * loops_per_shard * ops_per_loop) /. elapsed

let write_scaling_smoke () =
  let t1 = scaling_rate ~shards:1 in
  let t4 = scaling_rate ~shards:4 in
  record "fed.write_scaling" (t4 /. t1) "x"

(* Documented budget (DESIGN.md §16) for [durability.recovery_ms]: the
   snapshot policy bounds the WAL tail a restart replays to one policy
   window, so cold recovery time is independent of history length.  One
   window of single-chain commands replays in well under a second on any
   recent machine; 2000 ms leaves generous slack for loaded CI runners
   while still failing if recovery ever degrades to replaying history
   proportional to its length. *)
let recovery_ms_budget = 2_000.

(* Bounded-time recovery (DESIGN.md §16): build a single-chain history of
   [events] events through the wire codec into a WAL plus incremental
   snapshots, driving the same policy loop the server runs — a delta per
   WAL window, a full re-anchor every [max_chain] windows, segments
   retired and the directory compacted as it goes — then measure a cold
   [Recovery.run] over the result.  The replayed tail is bounded by one
   policy window no matter how long the history grew (that is the point
   of the subsystem), so [durability.recovery_ms] is held under an
   absolute budget in [check] rather than ratio-gated against a baseline.
   [durability.recovery_rss_mb] tracks the resident set right after the
   restore (Linux /proc/self/statm; skipped elsewhere). *)
let durability_recovery_smoke () =
  let module Storage = Kronos_durability.Storage in
  let module Wal = Kronos_durability.Wal in
  let module Snapshot = Kronos_durability.Snapshot in
  let module Recovery = Kronos_durability.Recovery in
  let module Message = Kronos_wire.Message in
  let events = if !Bench_util.full_scale then 1_000_000 else 30_000 in
  let window = if !Bench_util.full_scale then 4 * 1024 * 1024 else 128 * 1024 in
  let max_chain = 8 and keep = 2 in
  let wal_config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Always } in
  let storage = Storage.Memory.storage (Storage.Memory.create ()) in
  let wal, _ = Wal.open_ ~config:wal_config storage in
  let engine = Engine.create () in
  (* a scratch engine mints the same event ids the real one will *)
  let scratch = Engine.create () in
  let ids = Array.init events (fun _ -> Engine.create_event scratch) in
  let create_cmd = Kronos_wire.Message.encode_request Message.Create_event in
  let seq = ref 0 in
  let last_snap = ref 0 and last_full = ref 0 and chain_len = ref 0 in
  let mark = ref (Wal.logged_bytes wal) in
  let apply payload =
    incr seq;
    ignore (Server.apply engine payload);
    Wal.append wal ~seq:!seq ~payload;
    if !seq land 31 = 0 then Wal.flush wal;
    if Wal.logged_bytes wal - !mark >= window then begin
      Wal.flush wal;
      (if !last_full > 0 && !chain_len < max_chain then begin
         Snapshot.write_delta storage ~base_seq:!last_snap ~seq:!seq engine;
         incr chain_len
       end
       else begin
         Snapshot.write storage ~seq:!seq engine;
         last_full := !seq;
         chain_len := 0
       end);
      Engine.snapshot_written engine;
      last_snap := !seq;
      mark := Wal.logged_bytes wal;
      Wal.truncate_before wal ~seq:!seq;
      ignore (Snapshot.compact storage ~keep)
    end
  in
  for i = 0 to events - 1 do
    apply create_cmd;
    if i > 0 then
      apply
        (Message.encode_request
           (Message.Assign_order [ Order.must_before ids.(i - 1) ids.(i) ]))
  done;
  Wal.sync wal;
  if !last_snap = 0 then failwith "smoke: recovery bench never snapshotted";
  let outcome =
    Recovery.run ~wal_config
      ~replay:(fun e (r : Wal.record) -> ignore (Server.apply e r.payload))
      storage
  in
  if outcome.Recovery.next_seq <> !seq + 1 then
    failwith "smoke: recovery lost acknowledged commands";
  if outcome.Recovery.wal_bytes_replayed > 2 * window then
    failwith "smoke: recovery replayed more than one policy window";
  record "durability.recovery_ms" outcome.Recovery.recovery_ms "ms";
  record "durability.replay_ms" outcome.Recovery.replay_ms "ms";
  record "durability.wal_replayed_mb"
    (float_of_int outcome.Recovery.wal_bytes_replayed /. 1e6)
    "MB";
  record "durability.deltas_applied"
    (float_of_int outcome.Recovery.deltas_applied)
    "x";
  match
    try
      let ic = open_in "/proc/self/statm" in
      let line = input_line ic in
      close_in ic;
      Some line
    with Sys_error _ | End_of_file -> None
  with
  | None -> ()
  | Some statm -> (
    match String.split_on_char ' ' (String.trim statm) with
    | _ :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages ->
        record "durability.recovery_rss_mb"
          (float_of_int pages *. 4096. /. 1e6)
          "MB"
      | None -> ())
    | _ -> ())

let write_json path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"kronos-bench-smoke/1\",\n";
  Printf.fprintf oc "  \"scale\": %S,\n"
    (if !Bench_util.full_scale then "full" else "quick");
  output_string oc "  \"results\": [\n";
  let entries =
    List.rev_map
      (fun (name, value, unit_) ->
        Printf.sprintf "    {\"name\": %S, \"value\": %.6g, \"unit\": %S}" name
          value unit_)
      !results
  in
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n  ]\n}\n";
  close_out oc

(* Pull (name, value) pairs back out of a smoke snapshot.  The file is our
   own writer's output, one result object per line, so a line-level scan is
   enough — no JSON library needed. *)
let parse_results data =
  let results = ref [] in
  let scan i =
    let window = String.sub data i (min 160 (String.length data - i)) in
    try
      Scanf.sscanf window "{\"name\": %S, \"value\": %f" (fun name v ->
          results := (name, v) :: !results)
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()
  in
  let rec loop i =
    match String.index_from_opt data i '{' with
    | None -> ()
    | Some j ->
      scan j;
      loop (j + 1)
  in
  loop 0;
  List.rev !results

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

(* Regression gate behind `make bench-check`: re-measure the engine hot
   paths, the certify series and the federated series, and compare them
   with the committed BENCH_smoke.json.  The engine.* and certify.*
   ns/op series are in-process numbers; the fed.* series are closed-loop
   rates on the simulated network (pure compute, no real sleeping), so
   both are stable enough to gate.  The service.* series swing with
   machine load and are not gated, and the pct series is held under an
   absolute budget ([assign_overhead_budget_pct]) instead of a baseline
   ratio — it is a difference of two noisy numbers.  The threshold is
   deliberately loose (2.5x) so only real regressions fail CI, not
   measurement noise; for ops/s and x series "worse" means lower, so the
   ratio inverts.  [fed.write_scaling] additionally carries the hard
   floor graduated from the old federation.scaling test: 4 shards must
   beat 1 shard by more than 2x in absolute terms, not just stay within
   2.5x of the committed snapshot.  [engine.query_parallel_speedup]
   carries the analogous floor for the multicore query plane — the
   parallel reader domains must beat the single-domain live rate by
   more than 2x — applied only on hosts with at least 4 recommended
   domains (a single-core machine cannot show parallel speedup).
   [durability.recovery_ms] is held under the absolute
   [recovery_ms_budget] — recovery time measures the bounded WAL tail,
   not the machine, so a budget is the honest gate; its companion
   [durability.replay_ms] and [durability.recovery_rss_mb] series are
   recorded for trend-watching but not gated. *)
let check () =
  Bench_util.section "Smoke: regression gate vs BENCH_smoke.json";
  let baseline_path =
    Option.value ~default:"BENCH_smoke.json"
      (Sys.getenv_opt "KRONOS_SMOKE_BASELINE")
  in
  if not (Sys.file_exists baseline_path) then begin
    Printf.eprintf "smoke-check: no baseline at %s (run `make bench-smoke` and commit it)\n"
      baseline_path;
    exit 2
  end;
  let baseline = parse_results (read_file baseline_path) in
  let threshold = 2.5 in
  results := [];
  engine_hot_paths ();
  query_parallel_smoke ();
  certify_smoke ();
  federation_smoke ();
  write_scaling_smoke ();
  durability_recovery_smoke ();
  let failures = ref 0 in
  List.iter
    (fun (name, value, unit_) ->
      if unit_ = "pct" then
        if value > assign_overhead_budget_pct then begin
          incr failures;
          Printf.printf "  %-32s %12.6g %s  above the %.0f pct budget  FAIL\n"
            name value unit_ assign_overhead_budget_pct
        end
        else
          Printf.printf "  %-32s %12.6g %s  (budget %.0f pct)  ok\n" name value
            unit_ assign_overhead_budget_pct
      else if name = "fed.write_scaling" && value <= 2.0 then begin
        incr failures;
        Printf.printf "  %-32s %12.6g %s  below the hard 2x floor  FAIL\n"
          name value unit_
      end
      else if name = "durability.recovery_ms" then
        if value > recovery_ms_budget then begin
          incr failures;
          Printf.printf "  %-32s %12.6g %s  above the %.0f ms budget  FAIL\n"
            name value unit_ recovery_ms_budget
        end
        else
          Printf.printf "  %-32s %12.6g %s  (budget %.0f ms)  ok\n" name value
            unit_ recovery_ms_budget
      else if name = "durability.replay_ms" || name = "durability.recovery_rss_mb"
      then
        Printf.printf "  %-32s %12.6g %s  (recorded, not gated)\n" name value
          unit_
      else if
        name = "engine.query_parallel_speedup"
        && Domain.recommended_domain_count () >= 4
        && value <= 2.0
      then begin
        incr failures;
        Printf.printf
          "  %-32s %12.6g %s  below the hard 2x floor (%d domains)  FAIL\n"
          name value unit_
          (Domain.recommended_domain_count ())
      end
      else
        match List.assoc_opt name baseline with
        | None ->
          Printf.printf "  %-32s %12.6g %s  (no baseline, skipped)\n" name value
            unit_
        | Some base ->
          let ratio =
            if base <= 0. || value <= 0. then 1.
            else if unit_ = "ops/s" || unit_ = "x" then base /. value
            else value /. base
          in
          let verdict =
            if ratio > threshold then begin
              incr failures;
              "FAIL"
            end
            else "ok"
          in
          Printf.printf "  %-32s %12.6g %s  baseline %g  ratio %.2fx  %s\n" name
            value unit_ base ratio verdict)
    (List.rev !results);
  if !failures > 0 then begin
    Printf.eprintf
      "smoke-check: %d series regressed more than %.1fx vs %s\n"
      !failures threshold baseline_path;
    exit 1
  end;
  Bench_util.ours "all gated series within %.1fx of %s" threshold baseline_path

let run () =
  Bench_util.section "Smoke: quick performance snapshot -> BENCH_smoke.json";
  results := [];
  engine_hot_paths ();
  query_parallel_smoke ();
  certify_smoke ();
  service_closed_loop ();
  service_closed_loop_domains4 ();
  federation_smoke ();
  write_scaling_smoke ();
  durability_recovery_smoke ();
  let path =
    Option.value ~default:"BENCH_smoke.json" (Sys.getenv_opt "KRONOS_SMOKE_OUT")
  in
  write_json path;
  List.iter
    (fun (name, value, unit_) ->
      Printf.printf "  %-32s %12.6g %s\n" name value unit_)
    (List.rev !results);
  Bench_util.ours "wrote %d series to %s" (List.length !results) path
