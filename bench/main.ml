(* Benchmark driver: regenerates every figure of the paper's evaluation.

   Usage:
     dune exec bench/main.exe                 -- all experiments, quick scale
     dune exec bench/main.exe -- fig7 fig12   -- selected experiments
     dune exec bench/main.exe -- --full       -- paper-scale parameters *)

let experiments : (string * (unit -> unit)) list =
  [ ("fig9", Kronos_bench.Fig9.run);
    ("fig10", Kronos_bench.Fig10.run);
    ("fig11", Kronos_bench.Fig11.run);
    ("fig12", Kronos_bench.Fig12.run);
    ("micro", Kronos_bench.Micro.run);
    ("smoke", Kronos_bench.Smoke.run);
    ("smoke-check", Kronos_bench.Smoke.check);
    ("fedsim", Kronos_bench.Fedsim.run);
    ("ablation", Kronos_bench.Ablation.run);
    ("durability", Kronos_bench.Durability_bench.run);
    ("fig6", Kronos_bench.Fig6.run);
    ("fig7", Kronos_bench.Fig7.run);
    ("fig8", Kronos_bench.Fig8.run);
    ("fig13", Kronos_bench.Fig13.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args || Sys.getenv_opt "KRONOS_BENCH_FULL" <> None in
  Kronos_bench.Bench_util.full_scale := full;
  let selected = List.filter (fun a -> a <> "--full") args in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (available: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        selected
  in
  Printf.printf "Kronos benchmark harness (%s scale)\n"
    (if full then "full" else "quick");
  List.iter (fun (_, f) -> f ()) to_run
