(* Figure 13: fault tolerance timeline.

   A 2-fault-tolerant (3-replica) Kronos cluster under steady client load.
   At t = 30 s the middle replica of the chain is killed; the coordinator
   detects the failure and reconfigures.  At t = 60 s a fresh server joins
   at the tail (full state transfer) and the chain is 3 long again.  The
   paper shows the cluster staying available throughout, with a brief dip
   around each transition. *)

open Kronos
open Kronos_simnet

let clients = 16

let run () =
  Bench_util.section "Figure 13: throughput through failure and recovery (3-replica chain)";
  Bench_util.paper
    "kill middle replica at t=30s, add fresh one at t=60s; service stays available, throughput recovers";
  let sim = Sim.create ~seed:99L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let cluster =
    Kronos_service.Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ]
      ~service:(`Fixed 20e-6) ~ping_interval:0.25 ~failure_timeout:1.0 ()
  in
  (* workload: a mix of ordering writes and stale reads, closed loop *)
  let completed = ref 0 in
  let horizon = 90.0 in
  let make_client i =
    (* cache disabled: every operation must reach the service, so the
       timeline reflects service availability *)
    Kronos_service.Client.create ~net ~addr:(5000 + i) ~coordinator:1000
      ~cache_capacity:0 ~request_timeout:1.0 ()
  in
  let rec loop client rng prev =
    if Sim.now sim < horizon then begin
      match prev with
      | Some (p, q) when Rng.float rng 1.0 < 0.5 ->
        Kronos_service.Client.query_order client ~stale:true [ (p, q) ]
          (fun _ ->
            incr completed;
            loop client rng prev)
      | Some _ | None ->
        Kronos_service.Client.create_event client (fun e ->
            let e = Result.get_ok e in
            incr completed;
            match prev with
            | Some (_, q) ->
              Kronos_service.Client.assign_order client
                [ Order.prefer_before q e ]
                (fun _ ->
                  incr completed;
                  loop client rng (Some (q, e)))
            | None -> loop client rng (Some (e, e)))
    end
  in
  for i = 0 to clients - 1 do
    loop (make_client i) (Rng.split (Sim.rng sim)) None
  done;
  (* fault injection *)
  ignore
    (Sim.schedule sim ~delay:30.0 (fun () ->
         Kronos_service.Server.crash cluster 1));
  ignore
    (Sim.schedule sim ~delay:60.0 (fun () ->
         Kronos_service.Server.join cluster 7 ~service:(`Fixed 20e-6) ()));
  (* sample completed ops per second of virtual time *)
  let windows = int_of_float horizon in
  let series = Array.make windows 0 in
  let last = ref 0 in
  for w = 0 to windows - 1 do
    Sim.run ~until:(float_of_int (w + 1)) sim;
    series.(w) <- !completed - !last;
    last := !completed
  done;
  (* print a coarse timeline: 5-second buckets with a bar chart *)
  let bucket = 5 in
  Printf.printf "  %8s %14s\n%!" "t (s)" "ops/s";
  let peak = Array.fold_left max 1 series in
  for b = 0 to (windows / bucket) - 1 do
    let slice = Array.sub series (b * bucket) bucket in
    let avg = Array.fold_left ( + ) 0 slice / bucket in
    let bar = String.make (max 0 (40 * avg / peak)) '#' in
    let marker =
      if b * bucket = 30 then "  <- middle replica killed"
      else if b * bucket = 60 then "  <- fresh replica joins"
      else ""
    in
    Printf.printf "  %5d-%-3d %12d  %s%s\n%!" (b * bucket) ((b + 1) * bucket) avg
      bar marker
  done;
  (* availability: every window must have served requests *)
  let stalled = Array.exists (fun c -> c = 0) series in
  Bench_util.ours "service remained available in every 1 s window: %b" (not stalled);
  let before = Array.sub series 20 10 in
  let after = Array.sub series 80 10 in
  let mean a = Array.fold_left ( + ) 0 a / Array.length a in
  Bench_util.ours "throughput before failure ~%d ops/s; after recovery ~%d ops/s"
    (mean before) (mean after)
